//! JSON representations of the handoff-engine types (mm-json impls).
//!
//! Shapes follow serde-derive conventions: unit enum variants are strings
//! (`"Rsrp"`), data-carrying variants are single-key objects
//! (`{"A3":{"offset_db":3.0}}`), structs are field-name objects. This keeps
//! the exported datasets byte-compatible with what the serde-based exporter
//! produced.

use crate::config::{CellConfig, NeighborFreqConfig, Quantity, ServingConfig};
use crate::events::{EventKind, MeasurementReportContent, ReportConfig};
use crate::reselect::PriorityRelation;
use mm_json::{FromJson, Json, JsonError, ToJson};
use mmradio::cell::CellId;

impl ToJson for Quantity {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Quantity::Rsrp => "Rsrp",
                Quantity::Rsrq => "Rsrq",
            }
            .to_string(),
        )
    }
}

impl FromJson for Quantity {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("Rsrp") => Ok(Quantity::Rsrp),
            Some("Rsrq") => Ok(Quantity::Rsrq),
            _ => Err(JsonError::new("expected \"Rsrp\" or \"Rsrq\"")),
        }
    }
}

impl ToJson for PriorityRelation {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                PriorityRelation::IntraFreq => "IntraFreq",
                PriorityRelation::NonIntraHigher => "NonIntraHigher",
                PriorityRelation::NonIntraEqual => "NonIntraEqual",
                PriorityRelation::NonIntraLower => "NonIntraLower",
            }
            .to_string(),
        )
    }
}

impl FromJson for PriorityRelation {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("IntraFreq") => Ok(PriorityRelation::IntraFreq),
            Some("NonIntraHigher") => Ok(PriorityRelation::NonIntraHigher),
            Some("NonIntraEqual") => Ok(PriorityRelation::NonIntraEqual),
            Some("NonIntraLower") => Ok(PriorityRelation::NonIntraLower),
            _ => Err(JsonError::new("expected a PriorityRelation variant name")),
        }
    }
}

impl ToJson for EventKind {
    fn to_json(&self) -> Json {
        let variant = |name: &str, fields: Vec<(&str, Json)>| {
            Json::Obj(vec![(
                name.to_string(),
                Json::Obj(
                    fields
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                ),
            )])
        };
        match self {
            EventKind::A1 { threshold } => variant("A1", vec![("threshold", threshold.to_json())]),
            EventKind::A2 { threshold } => variant("A2", vec![("threshold", threshold.to_json())]),
            EventKind::A3 { offset_db } => variant("A3", vec![("offset_db", offset_db.to_json())]),
            EventKind::A4 { threshold } => variant("A4", vec![("threshold", threshold.to_json())]),
            EventKind::A5 {
                threshold1,
                threshold2,
            } => variant(
                "A5",
                vec![
                    ("threshold1", threshold1.to_json()),
                    ("threshold2", threshold2.to_json()),
                ],
            ),
            EventKind::A6 { offset_db } => variant("A6", vec![("offset_db", offset_db.to_json())]),
            EventKind::B1 { threshold } => variant("B1", vec![("threshold", threshold.to_json())]),
            EventKind::B2 {
                threshold1,
                threshold2,
            } => variant(
                "B2",
                vec![
                    ("threshold1", threshold1.to_json()),
                    ("threshold2", threshold2.to_json()),
                ],
            ),
            EventKind::Periodic => Json::Str("Periodic".to_string()),
        }
    }
}

impl FromJson for EventKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.as_str() == Some("Periodic") {
            return Ok(EventKind::Periodic);
        }
        let members = v
            .as_object()
            .ok_or_else(|| JsonError::new("expected an EventKind variant"))?;
        let (name, body) = members
            .first()
            .ok_or_else(|| JsonError::new("empty EventKind object"))?;
        let th = |key: &str| f64::from_json(&body[key]);
        Ok(match name.as_str() {
            "A1" => EventKind::A1 {
                threshold: th("threshold")?,
            },
            "A2" => EventKind::A2 {
                threshold: th("threshold")?,
            },
            "A3" => EventKind::A3 {
                offset_db: th("offset_db")?,
            },
            "A4" => EventKind::A4 {
                threshold: th("threshold")?,
            },
            "A5" => EventKind::A5 {
                threshold1: th("threshold1")?,
                threshold2: th("threshold2")?,
            },
            "A6" => EventKind::A6 {
                offset_db: th("offset_db")?,
            },
            "B1" => EventKind::B1 {
                threshold: th("threshold")?,
            },
            "B2" => EventKind::B2 {
                threshold1: th("threshold1")?,
                threshold2: th("threshold2")?,
            },
            other => return Err(JsonError::new(format!("unknown EventKind variant {other}"))),
        })
    }
}

impl ToJson for ReportConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("event", self.event.to_json()),
            ("quantity", self.quantity.to_json()),
            ("hysteresis_db", self.hysteresis_db.to_json()),
            ("time_to_trigger_ms", self.time_to_trigger_ms.to_json()),
            ("report_interval_ms", self.report_interval_ms.to_json()),
            ("report_amount", self.report_amount.to_json()),
        ])
    }
}

impl FromJson for ReportConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ReportConfig {
            event: EventKind::from_json(&v["event"])?,
            quantity: Quantity::from_json(&v["quantity"])?,
            hysteresis_db: f64::from_json(&v["hysteresis_db"])?,
            time_to_trigger_ms: u32::from_json(&v["time_to_trigger_ms"])?,
            report_interval_ms: u32::from_json(&v["report_interval_ms"])?,
            report_amount: u8::from_json(&v["report_amount"])?,
        })
    }
}

impl ToJson for MeasurementReportContent {
    fn to_json(&self) -> Json {
        Json::obj([
            ("event", self.event.to_json()),
            ("quantity", self.quantity.to_json()),
            ("serving_value", self.serving_value.to_json()),
            ("cells", self.cells.to_json()),
            ("trigger_cell", self.trigger_cell.to_json()),
            ("sequence", self.sequence.to_json()),
        ])
    }
}

impl FromJson for MeasurementReportContent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(MeasurementReportContent {
            event: EventKind::from_json(&v["event"])?,
            quantity: Quantity::from_json(&v["quantity"])?,
            serving_value: f64::from_json(&v["serving_value"])?,
            cells: Vec::<(CellId, f64)>::from_json(&v["cells"])?,
            trigger_cell: Option::<CellId>::from_json(&v["trigger_cell"])?,
            sequence: u32::from_json(&v["sequence"])?,
        })
    }
}

impl ToJson for ServingConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("priority", self.priority.to_json()),
            ("q_hyst_db", self.q_hyst_db.to_json()),
            ("q_rxlevmin_dbm", self.q_rxlevmin_dbm.to_json()),
            ("q_qualmin_db", self.q_qualmin_db.to_json()),
            ("s_intra_search_db", self.s_intra_search_db.to_json()),
            ("s_nonintra_search_db", self.s_nonintra_search_db.to_json()),
            (
                "thresh_serving_low_db",
                self.thresh_serving_low_db.to_json(),
            ),
            ("t_reselection_s", self.t_reselection_s.to_json()),
        ])
    }
}

impl FromJson for ServingConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ServingConfig {
            priority: u8::from_json(&v["priority"])?,
            q_hyst_db: f64::from_json(&v["q_hyst_db"])?,
            q_rxlevmin_dbm: f64::from_json(&v["q_rxlevmin_dbm"])?,
            q_qualmin_db: f64::from_json(&v["q_qualmin_db"])?,
            s_intra_search_db: f64::from_json(&v["s_intra_search_db"])?,
            s_nonintra_search_db: f64::from_json(&v["s_nonintra_search_db"])?,
            thresh_serving_low_db: f64::from_json(&v["thresh_serving_low_db"])?,
            t_reselection_s: f64::from_json(&v["t_reselection_s"])?,
        })
    }
}

impl ToJson for NeighborFreqConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("channel", self.channel.to_json()),
            ("priority", self.priority.to_json()),
            ("thresh_x_high_db", self.thresh_x_high_db.to_json()),
            ("thresh_x_low_db", self.thresh_x_low_db.to_json()),
            ("q_rxlevmin_dbm", self.q_rxlevmin_dbm.to_json()),
            ("q_offset_freq_db", self.q_offset_freq_db.to_json()),
            ("t_reselection_s", self.t_reselection_s.to_json()),
            ("meas_bandwidth_prb", self.meas_bandwidth_prb.to_json()),
        ])
    }
}

impl FromJson for NeighborFreqConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(NeighborFreqConfig {
            channel: FromJson::from_json(&v["channel"])?,
            priority: u8::from_json(&v["priority"])?,
            thresh_x_high_db: f64::from_json(&v["thresh_x_high_db"])?,
            thresh_x_low_db: f64::from_json(&v["thresh_x_low_db"])?,
            q_rxlevmin_dbm: f64::from_json(&v["q_rxlevmin_dbm"])?,
            q_offset_freq_db: f64::from_json(&v["q_offset_freq_db"])?,
            t_reselection_s: f64::from_json(&v["t_reselection_s"])?,
            meas_bandwidth_prb: u8::from_json(&v["meas_bandwidth_prb"])?,
        })
    }
}

impl ToJson for CellConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cell", self.cell.to_json()),
            ("channel", self.channel.to_json()),
            ("serving", self.serving.to_json()),
            ("neighbor_freqs", self.neighbor_freqs.to_json()),
            ("q_offset_cell_db", self.q_offset_cell_db.to_json()),
            ("forbidden_cells", self.forbidden_cells.to_json()),
            ("report_configs", self.report_configs.to_json()),
            ("s_measure_dbm", self.s_measure_dbm.to_json()),
        ])
    }
}

impl FromJson for CellConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CellConfig {
            cell: FromJson::from_json(&v["cell"])?,
            channel: FromJson::from_json(&v["channel"])?,
            serving: ServingConfig::from_json(&v["serving"])?,
            neighbor_freqs: Vec::<NeighborFreqConfig>::from_json(&v["neighbor_freqs"])?,
            q_offset_cell_db: Vec::<(CellId, f64)>::from_json(&v["q_offset_cell_db"])?,
            forbidden_cells: Vec::<CellId>::from_json(&v["forbidden_cells"])?,
            report_configs: Vec::<ReportConfig>::from_json(&v["report_configs"])?,
            s_measure_dbm: Option::<f64>::from_json(&v["s_measure_dbm"])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_shapes_follow_serde_conventions() {
        assert_eq!(
            EventKind::A3 { offset_db: 3.0 }.to_json_string(),
            r#"{"A3":{"offset_db":3}}"#
        );
        assert_eq!(EventKind::Periodic.to_json_string(), r#""Periodic""#);
        let a5 = EventKind::A5 {
            threshold1: -114.0,
            threshold2: -110.5,
        };
        assert_eq!(EventKind::from_json_str(&a5.to_json_string()).unwrap(), a5);
    }

    #[test]
    fn every_event_kind_round_trips() {
        for e in [
            EventKind::A1 { threshold: -100.0 },
            EventKind::A2 { threshold: -110.25 },
            EventKind::A3 { offset_db: -1.0 },
            EventKind::A4 { threshold: -102.5 },
            EventKind::A5 {
                threshold1: -44.0,
                threshold2: -114.0,
            },
            EventKind::A6 { offset_db: 2.0 },
            EventKind::B1 { threshold: -100.0 },
            EventKind::B2 {
                threshold1: -121.0,
                threshold2: -87.0,
            },
            EventKind::Periodic,
        ] {
            assert_eq!(EventKind::from_json_str(&e.to_json_string()).unwrap(), e);
        }
    }
}
