//! The workspace-wide error type.
//!
//! Every fallible surface above the pure model layer — artifact dispatch,
//! dataset export, the `mmx` CLI — returns [`MmError`]. The variants map
//! onto how a failure should be reported: [`MmError::exit_code`] gives the
//! CLI convention (2 for usage mistakes, 3 for runtime failures).

use std::fmt;

/// What went wrong while reading or writing an `mm-store` file.
///
/// Every decode failure in the binary persistence layer maps onto one of
/// these variants — the store never panics on malformed input, it returns
/// `MmError::Store` and the CLI exits 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The file ended before a complete header, block frame, or trailer.
    Truncated {
        /// What the reader was in the middle of ("header", "block payload", …).
        expected: &'static str,
    },
    /// The leading magic bytes are not `MMST` — not a store file at all.
    BadMagic,
    /// The file's format version is newer than this build can decode.
    Version {
        /// Version stamped in the file header.
        found: u32,
        /// Highest version this reader supports.
        supported: u32,
    },
    /// A block's CRC-32 does not match its payload (bit rot / bit flip).
    Checksum {
        /// Zero-based index of the corrupt block within the file.
        block: u64,
    },
    /// The framing is intact but the content is not decodable: unknown
    /// dataset kind, a dictionary index out of range, a string that does
    /// not intern into the workspace vocabulary, a bad enum tag, …
    Schema(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated { expected } => {
                write!(f, "truncated store file (while reading {expected})")
            }
            StoreError::BadMagic => write!(f, "bad magic: not an mm-store file"),
            StoreError::Version { found, supported } => write!(
                f,
                "store format version {found} is newer than supported version {supported}"
            ),
            StoreError::Checksum { block } => {
                write!(f, "checksum mismatch in block {block} (corrupt file)")
            }
            StoreError::Schema(msg) => write!(f, "schema error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What went wrong on the `mm-net` query-serving wire (DESIGN.md §14).
///
/// The framed protocol mirrors `mm-store`'s decode discipline: every
/// malformed input maps onto a typed variant — the peer never panics and
/// never hangs, it returns `MmError::Net` and the CLI exits 3 (except
/// [`NetError::Rejected`] responses flagged as usage errors, which exit 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The handshake did not start with the protocol magic — the peer is
    /// not speaking the mmqd protocol at all.
    BadMagic,
    /// The peer's protocol version is newer than this build speaks.
    Version {
        /// Version the peer announced.
        found: u32,
        /// Highest version this side supports.
        supported: u32,
    },
    /// The connection closed before a complete handshake or frame.
    Truncated {
        /// What the reader was in the middle of ("hello", "frame header", …).
        expected: &'static str,
    },
    /// A frame announced a payload larger than the negotiated cap. The
    /// stream is unrecoverable past the header, so the connection closes
    /// after the typed `oversized` response.
    Oversized {
        /// Announced payload length.
        len: u32,
        /// Maximum the receiver accepts.
        max: u32,
    },
    /// A frame's CRC-32 does not match its payload.
    Checksum,
    /// The framing is intact but the content is not decodable: unknown
    /// frame tag, undecodable JSON payload, a response missing its fields.
    Protocol(String),
    /// A read or write on the socket timed out.
    TimedOut,
    /// The server answered with a typed error response (the documented
    /// codes: `bad-request`, `overloaded`, `deadline`, `oversized`,
    /// `version`, `internal`).
    Rejected {
        /// Machine-readable error code.
        code: String,
        /// Whether the fault is the caller's (exit 2) or runtime (exit 3).
        usage: bool,
        /// Human-readable diagnosis.
        message: String,
    },
    /// The underlying socket operation failed.
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadMagic => write!(f, "bad magic: peer is not speaking the mmqd protocol"),
            NetError::Version { found, supported } => write!(
                f,
                "protocol version {found} is newer than supported version {supported}"
            ),
            NetError::Truncated { expected } => {
                write!(f, "connection closed mid-{expected}")
            }
            NetError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            NetError::Checksum => write!(f, "frame checksum mismatch (corrupt wire data)"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::TimedOut => write!(f, "socket operation timed out"),
            NetError::Rejected { code, message, .. } => {
                write!(f, "server rejected the request ({code}): {message}")
            }
            NetError::Io(msg) => write!(f, "socket error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Unified error for the experiment/export/CLI layers.
#[derive(Debug)]
pub enum MmError {
    /// An underlying I/O operation failed (export files, metrics files).
    Io(std::io::Error),
    /// JSON could not be parsed or decoded into the expected shape.
    Json(String),
    /// A configuration value is out of range or inconsistent.
    Config(String),
    /// An artifact id that no experiment produces.
    UnknownArtifact(String),
    /// A measurement campaign or its validation failed.
    Campaign(String),
    /// A dataset row violates the D2 value contract (non-finite value, a
    /// magnitude beyond the exact half-grid range, or an off-grid value).
    Dataset(String),
    /// A binary store file could not be decoded (see [`StoreError`]).
    Store(StoreError),
    /// The query-serving wire failed or the server rejected the request
    /// (see [`NetError`]).
    Net(NetError),
}

impl MmError {
    /// Whether this error is the caller's mistake (bad flag, unknown
    /// artifact) rather than a runtime failure. A server rejection flagged
    /// `usage` (e.g. `bad-request` for a malformed query) counts too, so
    /// `mmq --connect` keeps the local exit-code convention.
    pub fn is_usage(&self) -> bool {
        matches!(
            self,
            MmError::UnknownArtifact(_)
                | MmError::Config(_)
                | MmError::Net(NetError::Rejected { usage: true, .. })
        )
    }

    /// Process exit code under the CLI convention: 2 for usage errors,
    /// 3 for runtime failures.
    pub fn exit_code(&self) -> i32 {
        if self.is_usage() {
            2
        } else {
            3
        }
    }
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "i/o error: {e}"),
            MmError::Json(msg) => write!(f, "json error: {msg}"),
            MmError::Config(msg) => write!(f, "config error: {msg}"),
            MmError::UnknownArtifact(id) => {
                write!(f, "unknown artifact {id:?} (try `mmx list`)")
            }
            MmError::Campaign(msg) => write!(f, "campaign error: {msg}"),
            MmError::Dataset(msg) => write!(f, "dataset error: {msg}"),
            MmError::Store(e) => write!(f, "store error: {e}"),
            MmError::Net(e) => write!(f, "net error: {e}"),
        }
    }
}

impl std::error::Error for MmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MmError::Io(e) => Some(e),
            MmError::Store(e) => Some(e),
            MmError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for MmError {
    fn from(e: NetError) -> Self {
        MmError::Net(e)
    }
}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

impl From<StoreError> for MmError {
    fn from(e: StoreError) -> Self {
        MmError::Store(e)
    }
}

impl From<mm_json::JsonError> for MmError {
    fn from(e: mm_json::JsonError) -> Self {
        MmError::Json(e.0)
    }
}

impl From<mm_json::ParseError> for MmError {
    fn from(e: mm_json::ParseError) -> Self {
        MmError::Json(format!("parse error at byte {}: {}", e.at, e.msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_errors_exit_2_runtime_errors_exit_3() {
        assert_eq!(MmError::UnknownArtifact("zz".into()).exit_code(), 2);
        assert_eq!(MmError::Config("bad scale".into()).exit_code(), 2);
        assert_eq!(MmError::Json("truncated".into()).exit_code(), 3);
        assert_eq!(MmError::Campaign("count mismatch".into()).exit_code(), 3);
        assert_eq!(MmError::Dataset("NaN value".into()).exit_code(), 3);
        assert_eq!(MmError::Store(StoreError::BadMagic).exit_code(), 3);
        assert_eq!(
            MmError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")).exit_code(),
            3
        );
    }

    #[test]
    fn conversions_preserve_the_message() {
        let e: MmError = mm_json::JsonError::new("missing field").into();
        assert!(matches!(&e, MmError::Json(m) if m.contains("missing field")));
        let parse_err = mm_json::Json::parse("{").unwrap_err();
        let e: MmError = parse_err.into();
        assert!(matches!(&e, MmError::Json(m) if m.contains("parse error")));
    }

    #[test]
    fn store_variants_carry_their_diagnosis() {
        let cases: [(StoreError, &str); 5] = [
            (StoreError::Truncated { expected: "header" }, "truncated"),
            (StoreError::BadMagic, "magic"),
            (
                StoreError::Version {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (StoreError::Checksum { block: 3 }, "block 3"),
            (StoreError::Schema("bad tag".into()), "bad tag"),
        ];
        for (err, needle) in cases {
            let wrapped = MmError::from(err.clone());
            assert_eq!(wrapped.exit_code(), 3, "{err}");
            assert!(wrapped.to_string().contains(needle), "{err}");
            assert!(!wrapped.is_usage());
        }
    }

    #[test]
    fn net_variants_follow_the_exit_convention() {
        // Wire-level damage is a runtime failure (exit 3)...
        for err in [
            NetError::BadMagic,
            NetError::Version {
                found: 9,
                supported: 1,
            },
            NetError::Truncated { expected: "hello" },
            NetError::Oversized { len: 9, max: 4 },
            NetError::Checksum,
            NetError::Protocol("bad tag".into()),
            NetError::TimedOut,
            NetError::Io("refused".into()),
        ] {
            let wrapped = MmError::from(err.clone());
            assert_eq!(wrapped.exit_code(), 3, "{err}");
            assert!(!wrapped.is_usage());
        }
        // ...but a server rejection flagged `usage` keeps exit 2, so
        // `mmq --connect` matches local mmq's convention.
        let usage = MmError::from(NetError::Rejected {
            code: "bad-request".into(),
            usage: true,
            message: "unknown artifact".into(),
        });
        assert_eq!(usage.exit_code(), 2);
        let runtime = MmError::from(NetError::Rejected {
            code: "overloaded".into(),
            usage: false,
            message: "in-flight cap".into(),
        });
        assert_eq!(runtime.exit_code(), 3);
        assert!(runtime.to_string().contains("overloaded"));
    }

    #[test]
    fn display_names_the_variant() {
        assert!(MmError::UnknownArtifact("q9".into())
            .to_string()
            .contains("q9"));
        assert!(MmError::Campaign("boom".into())
            .to_string()
            .starts_with("campaign"));
    }
}
