//! Golden-fixture tests: every rule against its positive, suppressed, and
//! clean fixture under `tests/fixtures/`, plus scope/kind exemptions.
//!
//! Fixture files are plain data — the directory is neither a cargo target
//! nor visited by the workspace walk, so the deliberate violations inside
//! never fail the self-check in `tests/workspace.rs`.

use mm_lint::{analyze_manifest_src, analyze_source, Diagnostic};

/// A Deterministic-scope library path (the strictest classification).
const DET_LIB: &str = "crates/core/src/fixture.rs";
/// A Sched-scope library path (wall clocks and unordered maps tolerated).
const SCHED_LIB: &str = "crates/exec/src/fixture.rs";

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

fn assert_all(diags: &[Diagnostic], rule: &str, at_least: usize) {
    assert!(
        diags.len() >= at_least,
        "expected >= {at_least} {rule} diagnostics, got {:?}",
        rules_of(diags)
    );
    for d in diags {
        assert_eq!(d.rule, rule, "unexpected rule in {:?}", rules_of(diags));
        assert!(d.line > 0, "diagnostic must carry a line");
    }
}

// ---------------------------------------------------------------- D001

#[test]
fn d001_fires_on_hash_containers_in_deterministic_libs() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d001_positive.rs"));
    assert_all(&diags, "D001", 2);
}

#[test]
fn d001_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d001_suppressed.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d001_clean_btreemap_passes() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d001_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d001_exempts_sched_scope_crates() {
    let diags = analyze_source(SCHED_LIB, include_str!("fixtures/d001_positive.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d001_exempts_integration_tests() {
    let path = "crates/core/tests/fixture.rs";
    let diags = analyze_source(path, include_str!("fixtures/d001_positive.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_fires_on_wall_clocks_in_deterministic_libs() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d002_positive.rs"));
    assert_all(&diags, "D002", 2);
}

#[test]
fn d002_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d002_suppressed.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d002_clean_sim_clock_passes() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d002_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d002_exempts_sched_scope_crates() {
    let diags = analyze_source(SCHED_LIB, include_str!("fixtures/d002_positive.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_fires_on_raw_thread_spawn() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d003_positive.rs"));
    assert_all(&diags, "D003", 1);
}

#[test]
fn d003_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d003_suppressed.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d003_clean_executor_code_passes() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d003_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d003_exempts_the_executor_crate() {
    let diags = analyze_source(SCHED_LIB, include_str!("fixtures/d003_positive.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- D004

#[test]
fn d004_fires_on_process_exit_in_libraries() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d004_positive.rs"));
    assert_all(&diags, "D004", 1);
}

#[test]
fn d004_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d004_suppressed.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d004_clean_error_return_passes() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d004_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d004_exempts_the_mmx_and_mmq_binaries() {
    for bin in ["src/bin/mmx.rs", "src/bin/mmq.rs"] {
        let diags = analyze_source(bin, include_str!("fixtures/d004_positive.rs"));
        assert!(diags.is_empty(), "{bin}: {:?}", rules_of(&diags));
    }
}

// ---------------------------------------------------------------- A001

#[test]
fn a001_fires_on_bare_relaxed_and_unsafe() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/a001_positive.rs"));
    assert_all(&diags, "A001", 2);
}

#[test]
fn a001_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/a001_suppressed.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn a001_justification_comments_pass_even_wrapped() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/a001_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- E001

#[test]
fn e001_fires_on_unwrap_and_expect_in_libs() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/e001_positive.rs"));
    assert_all(&diags, "E001", 2);
}

#[test]
fn e001_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/e001_suppressed.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn e001_clean_option_return_and_test_module_pass() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/e001_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn e001_exempts_binaries_and_integration_tests() {
    for path in [
        "crates/core/src/bin/tool.rs",
        "crates/core/tests/fixture.rs",
    ] {
        let diags = analyze_source(path, include_str!("fixtures/e001_positive.rs"));
        assert!(diags.is_empty(), "{path}: {:?}", rules_of(&diags));
    }
}

// ---------------------------------------------------------------- S001

#[test]
fn s001_fires_on_malformed_and_unused_suppressions() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/s001_positive.rs"));
    // Unknown rule, missing reason, and an unused (stale) suppression.
    assert_all(&diags, "S001", 3);
}

// ---------------------------------------------------------------- Z001

#[test]
fn z001_fires_on_external_deps_and_build_machinery() {
    let diags = analyze_manifest_src(
        "crates/offender/Cargo.toml",
        include_str!("fixtures/z001_positive.toml"),
    );
    // serde, rand, cc, the [build-dependencies] section, package.build.
    assert_all(&diags, "Z001", 5);
}

#[test]
fn z001_clean_path_and_workspace_deps_pass() {
    let diags = analyze_manifest_src(
        "crates/hermetic/Cargo.toml",
        include_str!("fixtures/z001_clean.toml"),
    );
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}
