//! Golden-fixture tests: every rule against its positive, suppressed, and
//! clean fixture under `tests/fixtures/`, plus scope/kind exemptions.
//!
//! Fixture files are plain data — the directory is neither a cargo target
//! nor visited by the workspace walk, so the deliberate violations inside
//! never fail the self-check in `tests/workspace.rs`.

use mm_lint::{analyze_files, analyze_manifest_src, analyze_source, Diagnostic};

/// A Deterministic-scope library path (the strictest classification).
const DET_LIB: &str = "crates/core/src/fixture.rs";
/// A Sched-scope library path (wall clocks and unordered maps tolerated).
const SCHED_LIB: &str = "crates/exec/src/fixture.rs";

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

fn assert_all(diags: &[Diagnostic], rule: &str, at_least: usize) {
    assert!(
        diags.len() >= at_least,
        "expected >= {at_least} {rule} diagnostics, got {:?}",
        rules_of(diags)
    );
    for d in diags {
        assert_eq!(d.rule, rule, "unexpected rule in {:?}", rules_of(diags));
        assert!(d.line > 0, "diagnostic must carry a line");
        assert!(!d.suppressed, "positive fixtures must fire unsuppressed");
    }
}

/// A suppressed fixture's contract: every finding is present but marked
/// `suppressed`, names `rule`, and no S-family audit finding appears —
/// i.e. the file never fails the gate yet stays visible to `--json`.
fn assert_fully_suppressed(diags: &[Diagnostic], rule: &str) {
    assert!(
        !diags.is_empty(),
        "the suppressed finding must stay visible"
    );
    for d in diags {
        assert_eq!(d.rule, rule, "unexpected rule in {:?}", rules_of(diags));
        assert!(d.suppressed, "{} must be marked suppressed", d.human());
    }
}

// ---------------------------------------------------------------- D001

#[test]
fn d001_fires_on_hash_containers_in_deterministic_libs() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d001_positive.rs"));
    assert_all(&diags, "D001", 2);
}

#[test]
fn d001_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d001_suppressed.rs"));
    assert_fully_suppressed(&diags, "D001");
}

#[test]
fn d001_clean_btreemap_passes() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d001_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d001_exempts_sched_scope_crates() {
    let diags = analyze_source(SCHED_LIB, include_str!("fixtures/d001_positive.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d001_exempts_integration_tests() {
    let path = "crates/core/tests/fixture.rs";
    let diags = analyze_source(path, include_str!("fixtures/d001_positive.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_fires_on_wall_clocks_in_deterministic_libs() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d002_positive.rs"));
    assert_all(&diags, "D002", 2);
}

#[test]
fn d002_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d002_suppressed.rs"));
    assert_fully_suppressed(&diags, "D002");
}

#[test]
fn d002_clean_sim_clock_passes() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d002_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d002_exempts_sched_scope_crates() {
    let diags = analyze_source(SCHED_LIB, include_str!("fixtures/d002_positive.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_fires_on_raw_thread_spawn() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d003_positive.rs"));
    assert_all(&diags, "D003", 1);
}

#[test]
fn d003_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d003_suppressed.rs"));
    assert_fully_suppressed(&diags, "D003");
}

#[test]
fn d003_clean_executor_code_passes() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d003_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d003_exempts_the_executor_crate() {
    let diags = analyze_source(SCHED_LIB, include_str!("fixtures/d003_positive.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- D004

#[test]
fn d004_fires_on_process_exit_in_libraries() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d004_positive.rs"));
    assert_all(&diags, "D004", 1);
}

#[test]
fn d004_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d004_suppressed.rs"));
    assert_fully_suppressed(&diags, "D004");
}

#[test]
fn d004_clean_error_return_passes() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/d004_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn d004_exempts_the_mmx_and_mmq_binaries() {
    for bin in ["src/bin/mmx.rs", "src/bin/mmq.rs"] {
        let diags = analyze_source(bin, include_str!("fixtures/d004_positive.rs"));
        assert!(diags.is_empty(), "{bin}: {:?}", rules_of(&diags));
    }
}

// ---------------------------------------------------------------- A001

#[test]
fn a001_fires_on_bare_relaxed_and_unsafe() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/a001_positive.rs"));
    assert_all(&diags, "A001", 2);
}

#[test]
fn a001_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/a001_suppressed.rs"));
    assert_fully_suppressed(&diags, "A001");
}

#[test]
fn a001_justification_comments_pass_even_wrapped() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/a001_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- E001

#[test]
fn e001_fires_on_unwrap_and_expect_in_libs() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/e001_positive.rs"));
    assert_all(&diags, "E001", 2);
}

#[test]
fn e001_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/e001_suppressed.rs"));
    assert_fully_suppressed(&diags, "E001");
}

#[test]
fn e001_clean_option_return_and_test_module_pass() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/e001_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn e001_exempts_binaries_and_integration_tests() {
    for path in [
        "crates/core/src/bin/tool.rs",
        "crates/core/tests/fixture.rs",
    ] {
        let diags = analyze_source(path, include_str!("fixtures/e001_positive.rs"));
        assert!(diags.is_empty(), "{path}: {:?}", rules_of(&diags));
    }
}

// ---------------------------------------------------------------- R001

#[test]
fn r001_fires_on_entropy_and_literal_seeds() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/r001_positive.rs"));
    assert_all(&diags, "R001", 2);
}

#[test]
fn r001_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/r001_suppressed.rs"));
    assert_fully_suppressed(&diags, "R001");
}

#[test]
fn r001_clean_master_seed_derivation_passes() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/r001_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn r001_exempts_the_rng_crate_itself() {
    let path = "crates/rng/src/fixture.rs";
    let diags = analyze_source(path, include_str!("fixtures/r001_positive.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- R002

#[test]
fn r002_fires_on_rng_crossing_a_scatter_closure() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/r002_positive.rs"));
    assert_all(&diags, "R002", 1);
}

#[test]
fn r002_suppression_silences_with_reason() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/r002_suppressed.rs"));
    assert_fully_suppressed(&diags, "R002");
}

#[test]
fn r002_clean_per_task_derivation_passes() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/r002_clean.rs"));
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// --------------------------------------------- graph-rule fixtures
// R003/F001/P001/P002 need the workspace pass: in-memory files through
// `analyze_files` (no manifests, so call resolution is global).

/// A binary entry point that reaches `root_call` — the P-rule root.
fn entry(root_call: &str) -> (String, String) {
    (
        "crates/experiments/src/bin/mmx.rs".to_string(),
        format!("fn main() {{ {root_call}; }}\n"),
    )
}

/// A Deterministic-scope library path in netsim for graph fixtures.
const GRAPH_LIB: &str = "crates/netsim/src/fixture.rs";

// ---------------------------------------------------------------- R003

#[test]
fn r003_fires_on_duplicate_labels_across_files_and_spellings() {
    let diags = analyze_files(
        &[
            (
                "crates/netsim/src/a.rs",
                include_str!("fixtures/r003_positive_a.rs"),
            ),
            (
                "crates/netsim/src/b.rs",
                include_str!("fixtures/r003_positive_b.rs"),
            ),
        ],
        false,
    );
    // `0x5e5e` in one file and `24158` in the other normalize to the same
    // label; both sites are reported.
    assert_all(&diags, "R003", 2);
    let files: Vec<&str> = diags.iter().map(|d| d.file.as_str()).collect();
    assert_eq!(files, ["crates/netsim/src/a.rs", "crates/netsim/src/b.rs"]);
}

#[test]
fn r003_suppression_silences_with_reason() {
    let diags = analyze_files(
        &[(GRAPH_LIB, include_str!("fixtures/r003_suppressed.rs"))],
        false,
    );
    assert_fully_suppressed(&diags, "R003");
}

#[test]
fn r003_clean_distinct_labels_pass() {
    let diags = analyze_files(
        &[(GRAPH_LIB, include_str!("fixtures/r003_clean.rs"))],
        false,
    );
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn r003_same_label_in_different_crates_is_fine() {
    let diags = analyze_files(
        &[
            (
                "crates/netsim/src/a.rs",
                include_str!("fixtures/r003_positive_a.rs"),
            ),
            (
                "crates/mmlab/src/b.rs",
                include_str!("fixtures/r003_positive_b.rs"),
            ),
        ],
        false,
    );
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- F001

#[test]
fn f001_fires_on_reductions_reachable_from_scatter() {
    let diags = analyze_files(
        &[(GRAPH_LIB, include_str!("fixtures/f001_positive.rs"))],
        false,
    );
    assert_all(&diags, "F001", 1);
}

#[test]
fn f001_suppression_silences_with_reason() {
    let diags = analyze_files(
        &[(GRAPH_LIB, include_str!("fixtures/f001_suppressed.rs"))],
        false,
    );
    assert_fully_suppressed(&diags, "F001");
}

#[test]
fn f001_clean_kernel_routed_reduction_passes() {
    let diags = analyze_files(
        &[(GRAPH_LIB, include_str!("fixtures/f001_clean.rs"))],
        false,
    );
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- P001

#[test]
fn p001_fires_on_panics_reachable_from_a_binary() {
    let (epath, esrc) = entry("decode(0)");
    let diags = analyze_files(
        &[
            (epath.as_str(), esrc.as_str()),
            (GRAPH_LIB, include_str!("fixtures/p001_positive.rs")),
        ],
        false,
    );
    assert_all(&diags, "P001", 1);
}

#[test]
fn p001_without_an_entry_point_stays_quiet() {
    let diags = analyze_files(
        &[(GRAPH_LIB, include_str!("fixtures/p001_positive.rs"))],
        false,
    );
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

#[test]
fn p001_suppression_silences_with_reason() {
    let (epath, esrc) = entry("decode(0)");
    let diags = analyze_files(
        &[
            (epath.as_str(), esrc.as_str()),
            (GRAPH_LIB, include_str!("fixtures/p001_suppressed.rs")),
        ],
        false,
    );
    assert_fully_suppressed(&diags, "P001");
}

#[test]
fn p001_clean_option_return_passes() {
    let (epath, esrc) = entry("decode(0)");
    let diags = analyze_files(
        &[
            (epath.as_str(), esrc.as_str()),
            (GRAPH_LIB, include_str!("fixtures/p001_clean.rs")),
        ],
        false,
    );
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- P002

#[test]
fn p002_fires_on_cast_indexing_reachable_from_a_binary() {
    let (epath, esrc) = entry("count_for(&[], 0)");
    let diags = analyze_files(
        &[
            (epath.as_str(), esrc.as_str()),
            (GRAPH_LIB, include_str!("fixtures/p002_positive.rs")),
        ],
        false,
    );
    assert_all(&diags, "P002", 1);
}

#[test]
fn p002_suppression_silences_with_reason() {
    let (epath, esrc) = entry("count_for(&[], 0)");
    let diags = analyze_files(
        &[
            (epath.as_str(), esrc.as_str()),
            (GRAPH_LIB, include_str!("fixtures/p002_suppressed.rs")),
        ],
        false,
    );
    assert_fully_suppressed(&diags, "P002");
}

#[test]
fn p002_clean_checked_lookup_passes() {
    let (epath, esrc) = entry("count_for(&[], 0)");
    let diags = analyze_files(
        &[
            (epath.as_str(), esrc.as_str()),
            (GRAPH_LIB, include_str!("fixtures/p002_clean.rs")),
        ],
        false,
    );
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}

// ---------------------------------------------------------------- S001

#[test]
fn s001_fires_on_malformed_and_unused_suppressions() {
    let diags = analyze_source(DET_LIB, include_str!("fixtures/s001_positive.rs"));
    // Unknown rule, missing reason, and an unused (stale) suppression.
    assert_all(&diags, "S001", 3);
}

// ---------------------------------------------------------------- Z001

#[test]
fn z001_fires_on_external_deps_and_build_machinery() {
    let diags = analyze_manifest_src(
        "crates/offender/Cargo.toml",
        include_str!("fixtures/z001_positive.toml"),
    );
    // serde, rand, cc, the [build-dependencies] section, package.build.
    assert_all(&diags, "Z001", 5);
}

#[test]
fn z001_clean_path_and_workspace_deps_pass() {
    let diags = analyze_manifest_src(
        "crates/hermetic/Cargo.toml",
        include_str!("fixtures/z001_clean.toml"),
    );
    assert!(diags.is_empty(), "{:?}", rules_of(&diags));
}
