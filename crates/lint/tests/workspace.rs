//! Self-check: mmlint must be clean on the workspace that ships it, and the
//! `--json` output must survive the strict in-tree parser.

use mm_json::{Json, ToJson};
use mm_lint::{analyze_workspace, analyze_workspace_with, LintOptions};
use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn workspace_is_lint_clean() {
    let report = analyze_workspace(workspace_root()).expect("workspace walk");
    assert!(
        report.is_clean(),
        "the workspace must lint clean; diagnostics:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.human())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: a clean report because nothing was scanned would be vacuous.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
    assert!(
        report.manifests_scanned >= 13,
        "{} manifests",
        report.manifests_scanned
    );
}

#[test]
fn report_json_matches_binary_json_output() {
    let report = analyze_workspace(workspace_root()).expect("workspace walk");
    let out = Command::new(env!("CARGO_BIN_EXE_mmlint"))
        .arg("--root")
        .arg(workspace_root())
        .arg("--no-cache")
        .arg("--json")
        .output()
        .expect("run mmlint");
    assert!(
        out.status.success(),
        "mmlint --json exited {:?}",
        out.status.code()
    );
    let text = String::from_utf8(out.stdout).expect("utf-8 stdout");
    // The strict parser accepts the binary's bytes and they equal the
    // library's serialization of the same analysis (both uncached).
    let parsed = Json::parse(text.trim()).expect("strict parse of --json output");
    assert_eq!(parsed, report.to_json());
    assert_eq!(parsed.get("version").and_then(Json::as_u64), Some(2));
    assert_eq!(parsed.get("errors").and_then(Json::as_u64), Some(0));
    assert_eq!(parsed.get("cache_hits").and_then(Json::as_u64), Some(0));
    let diags = parsed
        .get("diagnostics")
        .and_then(Json::as_array)
        .expect("diagnostics array");
    // Every diagnostic in a clean workspace is a justified suppression,
    // and each carries the full (rule, severity, file, line, suppressed)
    // tuple for `--json` consumers.
    assert!(!diags.is_empty(), "suppressed findings must stay visible");
    for d in diags {
        assert_eq!(d.get("suppressed").and_then(Json::as_bool), Some(true));
        assert!(d.get("rule").and_then(Json::as_str).is_some());
        assert!(d.get("severity").and_then(Json::as_str).is_some());
        assert!(d.get("file").and_then(Json::as_str).is_some());
        assert!(d.get("line").and_then(Json::as_u64).is_some());
        assert!(d.get("message").and_then(Json::as_str).is_some());
    }
}

#[test]
fn workspace_survives_the_strict_suppression_audit() {
    // Under --strict-suppress a stale mm-allow anywhere fails the gate;
    // the shipped workspace must have none.
    let opts = LintOptions {
        cache_dir: None,
        strict_suppress: true,
    };
    let report = analyze_workspace_with(workspace_root(), &opts).expect("workspace walk");
    assert!(
        report.is_clean(),
        "stale suppressions:\n{}",
        report
            .diagnostics
            .iter()
            .filter(|d| !d.suppressed)
            .map(|d| d.human())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn warm_cache_hits_every_file_and_changes_nothing() {
    let dir = std::env::temp_dir().join(format!("mmlint-warm-{}", std::process::id()));
    let opts = LintOptions {
        cache_dir: Some(dir.clone()),
        strict_suppress: false,
    };
    let cold = analyze_workspace_with(workspace_root(), &opts).expect("cold run");
    assert_eq!(cold.cache_hits, 0, "cold run must analyze everything");
    let warm = analyze_workspace_with(workspace_root(), &opts).expect("warm run");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        warm.cache_hits, warm.files_scanned,
        "warm run must serve every file analysis from cache"
    );
    // Identical analysis, cold or warm.
    assert_eq!(cold.diagnostics, warm.diagnostics);
    assert_eq!(cold.files_scanned, warm.files_scanned);
}

#[test]
fn json_output_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_mmlint"))
            .arg("--root")
            .arg(workspace_root())
            .arg("--no-cache")
            .arg("--json")
            .env("MM_THREADS", threads)
            .output()
            .expect("run mmlint");
        assert!(out.status.success(), "MM_THREADS={threads} run failed");
        out.stdout
    };
    assert_eq!(run("1"), run("8"), "stdout must not depend on MM_THREADS");
}

#[test]
fn explain_and_list_cover_every_rule() {
    let list = Command::new(env!("CARGO_BIN_EXE_mmlint"))
        .arg("--list")
        .output()
        .expect("run mmlint --list");
    assert!(list.status.success());
    let listing = String::from_utf8(list.stdout).expect("utf-8");
    for rule in mm_lint::RULES {
        assert!(listing.contains(rule.id), "--list missing {}", rule.id);
        let explain = Command::new(env!("CARGO_BIN_EXE_mmlint"))
            .args(["--explain", rule.id])
            .output()
            .expect("run mmlint --explain");
        assert!(explain.status.success(), "--explain {} failed", rule.id);
        let text = String::from_utf8(explain.stdout).expect("utf-8");
        assert!(
            text.contains(rule.summary),
            "--explain {} missing summary",
            rule.id
        );
    }
    // Unknown rules are a usage error (exit 2).
    let bad = Command::new(env!("CARGO_BIN_EXE_mmlint"))
        .args(["--explain", "X999"])
        .output()
        .expect("run mmlint --explain X999");
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn version_flag_prints_the_crate_version() {
    let out = Command::new(env!("CARGO_BIN_EXE_mmlint"))
        .arg("--version")
        .output()
        .expect("run mmlint --version");
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        format!("mmlint {}", env!("CARGO_PKG_VERSION"))
    );
}
