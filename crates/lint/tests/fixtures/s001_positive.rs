pub fn first(xs: &[u32]) -> u32 {
    // mm-allow(X999): no such rule exists
    // mm-allow(E001):
    // mm-allow(D001): nothing on this or the next line triggers D001
    xs[0]
}
