// mm-allow(D001): scratch map drained into a sorted Vec before any output
use std::collections::HashMap;

pub fn histogram(xs: &[u32]) -> Vec<(u32, u32)> {
    // mm-allow(D001): scratch map drained into a sorted Vec before any output
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut out: Vec<(u32, u32)> = counts.into_iter().collect();
    out.sort_unstable();
    out
}
