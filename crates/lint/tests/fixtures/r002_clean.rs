//! R002 clean: each task derives its own stream from the master seed and
//! the task index — draw order is per-task, independent of interleaving.
use mm_exec::Executor;
use mmradio::rng::stream_rng;

pub fn drive(exec: &Executor, master: u64, items: Vec<u64>) -> Vec<u64> {
    exec.scatter_gather(items, move |i, it| {
        let mut rng = stream_rng(master, i as u64);
        step(&mut rng, it)
    })
}

fn step(rng: &mut impl mm_rng::Rng, it: u64) -> u64 {
    it ^ rng.gen::<u64>()
}
