//! R002 suppressed: the shared RNG is justified (e.g. the closure only
//! reads it immutably to re-derive per-task seeds).
use mm_exec::Executor;
use mmradio::rng::stream_rng;

pub fn drive(exec: &Executor, master: u64, items: Vec<u64>) -> Vec<u64> {
    // mm-allow(R002): closure reads the seed only; no draws cross tasks
    let rng_seed = stream_rng(master, 0x7a11);
    exec.scatter_gather(items, |_, it| step(&rng_seed, it))
}

fn step(_rng: &impl std::fmt::Debug, it: u64) -> u64 {
    it
}
