pub fn bail(msg: &str) -> Result<(), String> {
    Err(format!("runtime failure: {msg}"))
}
