//! P001 clean: the impossible case is structural — an Option return.
pub fn decode(code: u8) -> Option<&'static str> {
    match code {
        0 => Some("a3"),
        1 => Some("a5"),
        _ => None,
    }
}
