//! P002 clean: the lookup handles the out-of-range case explicitly.
pub fn count_for(counts: &[u64], code: u8) -> u64 {
    counts.get(code as usize).copied().unwrap_or(0)
}
