pub fn bail(msg: &str) -> ! {
    eprintln!("{msg}");
    // mm-allow(D004): fatal-signal shim, no destructors can be live here
    std::process::exit(3)
}
