//! F001 clean: the reduction routes through the order-pinned kernel.
use mm_exec::Executor;
use mmcore::kernel::sum_f64;

pub fn fan_out(exec: &Executor, xs: Vec<Vec<f64>>) -> Vec<f64> {
    exec.scatter_gather(xs, |_, v| sum_f64(v.iter().copied()) / v.len() as f64)
}
