//! R003 positive, file A: labels a stream `0x5e5e`.
use mmradio::rng::stream_rng;

pub fn sampler(seed: u64) -> impl mm_rng::Rng {
    stream_rng(seed, 0x5e5e)
}
