//! P001 positive: an unreachable! arm in library code that a binary calls.
pub fn decode(code: u8) -> &'static str {
    match code {
        0 => "a3",
        1 => "a5",
        _ => unreachable!("codes are validated upstream"),
    }
}
