pub fn first_even(xs: &[u32]) -> Option<u32> {
    xs.iter().find(|x| *x % 2 == 0).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_test_modules() {
        let xs = [1u32, 2, 3];
        assert_eq!(super::first_even(&xs).unwrap(), 2);
        let n: u32 = "7".parse().expect("digits");
        assert_eq!(n, 7);
    }
}
