use std::time::Instant;

pub fn stamp() -> Instant {
    // mm-allow(D002): debug-only probe, value never reaches artifact bytes
    Instant::now()
}
