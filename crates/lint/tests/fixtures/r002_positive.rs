//! R002 positive: one RNG created outside the scatter and dragged into the
//! task closure — its draw order then depends on task interleaving.
use mm_exec::Executor;
use mmradio::rng::stream_rng;

pub fn drive(exec: &Executor, master: u64, items: Vec<u64>) -> Vec<u64> {
    let mut rng = stream_rng(master, 0x7a11);
    exec.scatter_gather(items, |_, it| step(&mut rng, it))
}

fn step(rng: &mut impl mm_rng::Rng, it: u64) -> u64 {
    it ^ rng.gen::<u64>()
}
