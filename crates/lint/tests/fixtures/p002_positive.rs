//! P002 positive: an as-cast subscript in library code a binary reaches.
pub fn count_for(counts: &[u64], code: u8) -> u64 {
    counts[code as usize]
}
