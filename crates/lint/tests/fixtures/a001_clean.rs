use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    // relaxed-ok: independent monotonic add, read only after workers join
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn bump_wrapped(counter: &AtomicU64) -> u64 {
    // relaxed-ok: independent monotonic add; the justification wraps onto a
    // second comment line and must still be found by the block walk
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn reinterpret(x: u32) -> i32 {
    // SAFETY: every u32 bit pattern is a valid i32
    unsafe { std::mem::transmute::<u32, i32>(x) }
}
