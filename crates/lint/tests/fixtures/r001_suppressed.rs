//! R001 suppressed: the same constructions, each with a justified allow.
use mm_rng::SmallRng;

pub fn fresh_entropy() -> SmallRng {
    // mm-allow(R001): interactive demo binary, replay not required here
    SmallRng::from_entropy()
}

pub fn hardcoded_stream() -> SmallRng {
    // mm-allow(R001): fixed probe stream shared with the paper's artifact
    SmallRng::seed_from_u64(0xDEAD_BEEF)
}
