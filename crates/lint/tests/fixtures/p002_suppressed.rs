//! P002 suppressed: the cast subscript carries a justified allow.
pub fn count_for(counts: &[u64], code: u8) -> u64 {
    // mm-allow(P002): code is an event discriminant, always < counts.len()
    counts[code as usize]
}
