pub fn first_even(xs: &[u32]) -> u32 {
    let found = xs.iter().find(|x| *x % 2 == 0);
    found.copied().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("caller passes digits")
}
