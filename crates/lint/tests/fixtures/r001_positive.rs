//! R001 positive: RNGs that do not derive from the master seed.
use mm_rng::SmallRng;

pub fn fresh_entropy() -> SmallRng {
    SmallRng::from_entropy()
}

pub fn hardcoded_stream() -> SmallRng {
    SmallRng::seed_from_u64(0xDEAD_BEEF)
}
