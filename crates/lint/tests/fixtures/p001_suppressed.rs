//! P001 suppressed: the panic arm carries a justified allow.
pub fn decode(code: u8) -> &'static str {
    match code {
        0 => "a3",
        1 => "a5",
        // mm-allow(P001): code is a validated enum discriminant < 2
        _ => unreachable!("codes are validated upstream"),
    }
}
