//! R001 clean: every RNG derives from the experiment's master seed.
use mm_rng::SmallRng;
use mmradio::rng::sub_seed;

pub fn derived(master: u64, ue: u64) -> SmallRng {
    SmallRng::seed_from_u64(sub_seed(master, ue))
}
