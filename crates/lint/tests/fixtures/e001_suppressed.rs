pub fn first(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // mm-allow(E001): asserted non-empty one line up
    xs.first().copied().unwrap()
}
