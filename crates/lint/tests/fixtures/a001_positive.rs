use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn reinterpret(x: u32) -> i32 {
    unsafe { std::mem::transmute::<u32, i32>(x) }
}
