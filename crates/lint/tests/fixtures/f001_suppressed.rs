//! F001 suppressed: the reduction is justified (inputs are exact dyadics).
use mm_exec::Executor;

pub fn fan_out(exec: &Executor, xs: Vec<Vec<f64>>) -> Vec<f64> {
    exec.scatter_gather(xs, |_, v| mean(&v))
}

fn mean(xs: &[f64]) -> f64 {
    // mm-allow(F001): inputs are small dyadic rationals; addition is exact
    xs.iter().sum::<f64>() / xs.len() as f64
}
