use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    // mm-allow(A001): justification lives in the module docs for this block
    counter.fetch_add(1, Ordering::Relaxed)
}
