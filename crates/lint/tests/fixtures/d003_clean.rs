pub fn fan_out(items: Vec<u32>) -> Vec<u32> {
    // Parallelism flows through the executor's ordered scatter/gather.
    items.into_iter().map(|x| x * 2).collect()
}
