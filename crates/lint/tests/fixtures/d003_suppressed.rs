pub fn fan_out() {
    // mm-allow(D003): detached watchdog thread, output never observed
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
