use std::collections::BTreeMap;

pub fn histogram(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut counts = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}
