pub fn stamp(now_ms: u64) -> u64 {
    now_ms + 40
}
