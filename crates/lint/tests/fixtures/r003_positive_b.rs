//! R003 positive, file B: the same label spelled in decimal — `24158`
//! collides with file A's `0x5e5e`, so the two streams are identical.
use mmradio::rng::stream_rng;

pub fn shuffler(seed: u64) -> impl mm_rng::Rng {
    stream_rng(seed, 24158)
}
