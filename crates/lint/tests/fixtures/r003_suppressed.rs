//! R003 suppressed: two same-label streams, both justified (deliberate
//! shared stream; the two call sites are never live together).
use mmradio::rng::stream_rng;

pub fn sampler(seed: u64) -> impl mm_rng::Rng {
    // mm-allow(R003): resumes the crawler's stream after a checkpoint
    stream_rng(seed, 0x5e5e)
}

pub fn resumer(seed: u64) -> impl mm_rng::Rng {
    // mm-allow(R003): resumes the crawler's stream after a checkpoint
    stream_rng(seed, 0x5e5e)
}
