pub fn bail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(3)
}
