//! R003 clean: every stream label in the crate is distinct.
use mmradio::rng::stream_rng;

pub fn sampler(seed: u64) -> impl mm_rng::Rng {
    stream_rng(seed, 0x5e5e)
}

pub fn shuffler(seed: u64) -> impl mm_rng::Rng {
    stream_rng(seed, 0x7a11)
}
