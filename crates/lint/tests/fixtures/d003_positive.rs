pub fn fan_out() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
