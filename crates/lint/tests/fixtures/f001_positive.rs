//! F001 positive: an f64 sum in a helper reachable from a scatter site.
use mm_exec::Executor;

pub fn fan_out(exec: &Executor, xs: Vec<Vec<f64>>) -> Vec<f64> {
    exec.scatter_gather(xs, |_, v| mean(&v))
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}
