//! The lint registry: every domain rule, its explanation, and its check.
//!
//! Token rules are patterns over the lexed stream of one file (see
//! [`crate::engine::FileCtx`]); the manifest rule walks the parsed
//! `Cargo.toml` subset. To add a rule: write a `check_*` function, add a
//! [`Rule`] entry to [`RULES`] with an id, summary and `explain` text, and
//! drop a fixture under `tests/fixtures/` exercising the positive,
//! suppressed, and clean cases.

use crate::diag::{Diagnostic, Severity};
use crate::engine::{FileCtx, FileKind, Scope};
use crate::manifest::{self, DepSource};

/// One registered lint.
pub struct Rule {
    /// Stable id (`D001`, ...), the key used by `mm-allow` and `--explain`.
    pub id: &'static str,
    /// Gate-failing or advisory.
    pub severity: Severity,
    /// One-line summary for listings.
    pub summary: &'static str,
    /// Long-form rationale for `--explain`.
    pub explain: &'static str,
    /// Token-level check; `None` for rules that run elsewhere (Z001 on
    /// manifests, S001 inside the suppression machinery).
    pub check: Option<fn(&FileCtx, &mut Vec<Diagnostic>)>,
}

/// The registry. Order is the reporting order for `--list`.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D001",
        severity: Severity::Error,
        summary: "no HashMap/HashSet in deterministic crates",
        explain: "std::collections::HashMap and HashSet iterate in RandomState order, which \
                  differs per process. One stray iteration over such a map in a Sim-scope path \
                  makes tables and figures differ between re-runs. Deterministic crates must use \
                  BTreeMap/BTreeSet (or a Vec plus an explicit sort). Sched-scope crates \
                  (exec, telemetry, bench) are exempt because their maps never feed artifact \
                  bytes.",
        check: Some(check_d001),
    },
    Rule {
        id: "D002",
        severity: Severity::Error,
        summary: "no wall clocks outside Sched-scope crates",
        explain: "Instant::now and SystemTime::now read the host clock, so any value derived \
                  from them differs per run. Simulation code must use the simulated clock \
                  (now_ms) exclusively. Wall clocks are allowed only in mm-bench (timing is its \
                  job), mm-exec (scheduler stats), and mm-telemetry (span wall-clock shims), \
                  where readings stay in the Sched scope that determinism checks exclude.",
        check: Some(check_d002),
    },
    Rule {
        id: "D003",
        severity: Severity::Error,
        summary: "no thread spawning outside crates/exec",
        explain: "All parallelism flows through the mm-exec scatter/gather executor, whose \
                  ordered gather is what makes parallel output byte-identical to sequential. \
                  A raw std::thread::spawn (or scope().spawn) elsewhere bypasses MM_THREADS, \
                  per-task RNG seeding, and the determinism contract.",
        check: Some(check_d003),
    },
    Rule {
        id: "D004",
        severity: Severity::Error,
        summary: "no process::exit outside the mmx/mmq/mmqd binaries",
        explain: "Library code must report failures as MmError (exit code 2 for usage, 3 for \
                  runtime) and let the mmx/mmq/mmqd binaries translate at the process \
                  boundary. A process::exit in a library skips destructors — telemetry \
                  flushes, export file closes — and hides the error path from tests.",
        check: Some(check_d004),
    },
    Rule {
        id: "A001",
        severity: Severity::Error,
        summary: "Relaxed atomics and unsafe blocks need justification comments",
        explain: "Every Ordering::Relaxed on a cross-thread atomic needs a `relaxed-ok:` \
                  comment on the same line or in the contiguous comment block above saying \
                  why the weak ordering cannot corrupt a deterministic value, and every \
                  `unsafe` needs a `SAFETY:` comment stating the invariant that makes it \
                  sound. The comment is the review artifact; its absence is the lint.",
        check: Some(check_a001),
    },
    Rule {
        id: "Z001",
        severity: Severity::Error,
        summary: "hermetic workspace: in-tree path dependencies only, no build.rs",
        explain: "The workspace builds offline with an empty cargo cache: every dependency is \
                  an in-tree crates/ path (directly or via [workspace.dependencies]). Registry \
                  or git requirements, [build-dependencies], a package.build override, or a \
                  build.rs file all break that hermeticity. Manifest findings cannot be \
                  suppressed.",
        check: None,
    },
    Rule {
        id: "E001",
        severity: Severity::Error,
        summary: "no unwrap()/expect() in library code",
        explain: "A panic in a library crate tears down a whole campaign mid-flight. Fallible \
                  paths must return MmError (or restructure so the failure cannot exist: \
                  f64::total_cmp instead of partial_cmp().expect, let-else instead of \
                  Option::unwrap). Test modules, integration tests, benches, examples, and \
                  binaries may unwrap freely. True invariants may be suppressed with an \
                  mm-allow comment that states the invariant.",
        check: Some(check_e001),
    },
    Rule {
        id: "R001",
        severity: Severity::Error,
        summary: "no hardcoded RNG seeds or entropy in deterministic code",
        explain: "Deterministic crates derive every RNG from the experiment's master seed \
                  through the named derivation fns (sub_seed, stream_rng, round_seed), so a \
                  run can be replayed and re-sharded bit-exactly. A seed_from_u64 whose \
                  argument is a bare literal creates a stream no replay can re-derive from \
                  the config, and from_entropy is nondeterministic by definition. crates/rng \
                  (the RNG implementation itself) is exempt.",
        check: Some(check_r001),
    },
    Rule {
        id: "R002",
        severity: Severity::Error,
        summary: "RNG values must not cross into scatter closures",
        explain: "An Rng constructed before an exec.scatter_gather call and referenced inside \
                  the task closure ties the drawn values to task scheduling: which task \
                  touches the generator first differs per thread count, so output stops \
                  being MM_THREADS-invariant. Derive a fresh stream inside the task from \
                  the master seed and the task's own index (sub_seed(master, index)) — the \
                  per-UE/per-shard pattern used by the fleet runtime.",
        check: Some(check_r002),
    },
    Rule {
        id: "R003",
        severity: Severity::Error,
        summary: "one stream label, one stream (workspace analysis)",
        explain: "stream_rng(master, label) hashes the label into the master seed, so two \
                  production call sites in one crate using the same constant label draw the \
                  *same* xoshiro stream — silently correlated randomness that biases exactly \
                  the handoff statistics the paper measures. Every independent stream needs \
                  its own label; per-item streams derive with sub_seed/round_seed. Resolved \
                  in the workspace graph phase, so single files in isolation never flag.",
        check: None,
    },
    Rule {
        id: "F001",
        severity: Severity::Error,
        summary: "f64 reductions on scatter-reachable paths live in the kernel files",
        explain: "f64 addition is not associative: a sum folded in a different order yields \
                  different low bits, so any float reduction on a path reachable from an \
                  mm-exec scatter site can silently break the byte-identical-at-any-\
                  MM_THREADS contract. Such reductions must live in the sanctioned kernel \
                  files (mmcore::kernel's ordered scalar kernels, mmlab's count-based \
                  ValueCounts/Welford aggregation) or accumulate in integers like the fleet \
                  tallies. Reachability comes from the approximate workspace call graph.",
        check: None,
    },
    Rule {
        id: "P001",
        severity: Severity::Error,
        summary: "no panic macros in library code reachable from a binary",
        explain: "panic!/unreachable!/todo!/unimplemented! in a library fn on a call path \
                  from the mmx/mmq/mmlint entry points can tear down a multi-hour campaign \
                  on an edge case. Restructure so the case cannot exist (if-let, exhaustive \
                  match, Option returns) or return MmError. This is E001's philosophy made \
                  call-graph-aware: binaries and dead code may panic, reachable library \
                  code may not.",
        check: None,
    },
    Rule {
        id: "P002",
        severity: Severity::Error,
        summary: "no as-cast indexing in library code reachable from a binary",
        explain: "v[i as usize] panics out of bounds when the cast value exceeds the \
                  collection — the classic silent-truncation crash at paper scale (u8/u32 \
                  codes indexing fixed tables). On call paths from a binary entry point, \
                  index with .get()/.get_mut() and handle the None, or restructure so the \
                  index is proven by construction (iterators, zip).",
        check: None,
    },
    Rule {
        id: "S001",
        severity: Severity::Error,
        summary: "suppressions must be well-formed, justified, and used",
        explain: "An mm-allow comment must name a known rule, carry a non-empty reason after \
                  the colon, and actually suppress a diagnostic on its own or the following \
                  line. Anything else — unknown rule, missing reason, stale suppression left \
                  behind after the code was fixed — is itself an error, so the suppression \
                  inventory stays honest.",
        check: None,
    },
    Rule {
        id: "S002",
        severity: Severity::Warn,
        summary: "workspace-phase suppressions must still fire",
        explain: "An mm-allow naming a graph-phase rule (R003/F001/P001/P002) can only be \
                  audited after the whole workspace is analyzed: when it no longer matches \
                  any diagnostic it is stale and must be pruned. Advisory by default because \
                  the call graph is approximate; `mmlint --strict-suppress` (the verify.sh \
                  gate) promotes it to an error so the suppression inventory cannot rot.",
        check: None,
    },
];

/// Is `id` a registered rule id?
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Look up a rule for `--explain`.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Shorthand for pushing a finding.
fn push(
    diags: &mut Vec<Diagnostic>,
    rule: &'static str,
    ctx: &FileCtx,
    line: u32,
    message: String,
) {
    diags.push(Diagnostic {
        rule,
        severity: Severity::Error,
        file: ctx.path.to_string(),
        line,
        message,
        suppressed: false,
    });
}

/// Do the token texts starting at `i` match `pat` exactly?
fn seq_matches(ctx: &FileCtx, i: usize, pat: &[&str]) -> bool {
    let toks = &ctx.lexed.toks;
    pat.iter()
        .enumerate()
        .all(|(k, want)| toks.get(i + k).is_some_and(|t| t.text == *want))
}

/// Does production (non-test) code at this line concern the rule at all?
fn production_code(ctx: &FileCtx, line: u32, kinds: &[FileKind]) -> bool {
    kinds.contains(&ctx.kind) && !ctx.in_test(line)
}

fn check_d001(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if ctx.scope != Scope::Deterministic {
        return;
    }
    for t in &ctx.lexed.toks {
        if (t.text == "HashMap" || t.text == "HashSet")
            && production_code(ctx, t.line, &[FileKind::Lib, FileKind::Bin])
        {
            push(
                diags,
                "D001",
                ctx,
                t.line,
                format!(
                    "{} in deterministic crate `{}`: iteration order is per-process random; \
                     use BTreeMap/BTreeSet or sort explicitly",
                    t.text, ctx.crate_name
                ),
            );
        }
    }
}

fn check_d002(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if ctx.scope != Scope::Deterministic {
        return;
    }
    let toks = &ctx.lexed.toks;
    for (i, tok) in toks.iter().enumerate() {
        for clock in ["Instant", "SystemTime"] {
            if tok.text == clock
                && seq_matches(ctx, i, &[clock, ":", ":", "now"])
                && production_code(ctx, tok.line, &[FileKind::Lib, FileKind::Bin])
            {
                push(
                    diags,
                    "D002",
                    ctx,
                    tok.line,
                    format!(
                        "{clock}::now in deterministic crate `{}`: simulation code must use \
                         the simulated clock, wall time lives in Sched-scope crates only",
                        ctx.crate_name
                    ),
                );
            }
        }
    }
}

fn check_d003(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if ctx.crate_name == "exec" {
        return;
    }
    let toks = &ctx.lexed.toks;
    for (i, tok) in toks.iter().enumerate() {
        if tok.text == "spawn"
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && production_code(ctx, tok.line, &[FileKind::Lib, FileKind::Bin])
        {
            push(
                diags,
                "D003",
                ctx,
                tok.line,
                "thread spawn outside crates/exec: route parallelism through the mm-exec \
                 executor so MM_THREADS and the determinism contract hold"
                    .to_string(),
            );
        }
    }
}

fn check_d004(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if ctx.path.ends_with("src/bin/mmx.rs")
        || ctx.path.ends_with("src/bin/mmq.rs")
        || ctx.path.ends_with("src/bin/mmqd.rs")
    {
        return;
    }
    let toks = &ctx.lexed.toks;
    for (i, tok) in toks.iter().enumerate() {
        if seq_matches(ctx, i, &["process", ":", ":", "exit"])
            && production_code(ctx, tok.line, &[FileKind::Lib, FileKind::Bin])
        {
            push(
                diags,
                "D004",
                ctx,
                tok.line,
                "process::exit outside the mmx/mmq/mmqd binaries: return MmError and let \
                 the CLI map it to an exit code (2 usage / 3 runtime)"
                    .to_string(),
            );
        }
    }
}

fn check_a001(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    let kinds = [
        FileKind::Lib,
        FileKind::Bin,
        FileKind::Bench,
        FileKind::Example,
    ];
    for t in &ctx.lexed.toks {
        if !production_code(ctx, t.line, &kinds) {
            continue;
        }
        if t.text == "Relaxed" && !ctx.nearby_comment_contains(t.line, "relaxed-ok:") {
            push(
                diags,
                "A001",
                ctx,
                t.line,
                "Ordering::Relaxed without a `relaxed-ok:` comment on this line or in the \
                 comment block above justifying the weak ordering"
                    .to_string(),
            );
        }
        if t.text == "unsafe" && !ctx.nearby_comment_contains(t.line, "SAFETY:") {
            push(
                diags,
                "A001",
                ctx,
                t.line,
                "unsafe without a `SAFETY:` comment on this line or in the comment block \
                 above stating the soundness invariant"
                    .to_string(),
            );
        }
    }
}

fn check_e001(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.toks;
    for (i, tok) in toks.iter().enumerate() {
        if !production_code(ctx, tok.line, &[FileKind::Lib]) {
            continue;
        }
        if seq_matches(ctx, i, &[".", "unwrap", "(", ")"]) {
            push(
                diags,
                "E001",
                ctx,
                tok.line,
                "unwrap() in library code: return MmError, restructure with let-else, or \
                 justify the invariant with a suppression"
                    .to_string(),
            );
        } else if seq_matches(ctx, i, &[".", "expect", "("]) {
            push(
                diags,
                "E001",
                ctx,
                tok.line,
                "expect() in library code: return MmError, restructure (e.g. f64::total_cmp \
                 for NaN-free comparisons), or justify the invariant with a suppression"
                    .to_string(),
            );
        }
    }
}

/// Seed-derivation fns whose presence in a `seed_from_u64` argument makes
/// the construction legitimate for R001.
const DERIVE_FNS: &[&str] = &[
    "sub_seed",
    "sub_seed3",
    "stream_rng",
    "round_seed",
    "splitmix64",
    "run_seed",
];

fn check_r001(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if ctx.scope != Scope::Deterministic || ctx.crate_name == "rng" {
        return;
    }
    let toks = &ctx.lexed.toks;
    for (i, tok) in toks.iter().enumerate() {
        if !production_code(ctx, tok.line, &[FileKind::Lib, FileKind::Bin]) {
            continue;
        }
        if tok.text == "from_entropy" && toks.get(i + 1).is_some_and(|t| t.text == "(") {
            push(
                diags,
                "R001",
                ctx,
                tok.line,
                "from_entropy in deterministic code: every RNG must derive from the master \
                 seed so runs replay bit-exactly"
                    .to_string(),
            );
        }
        if tok.text == "seed_from_u64" && toks.get(i + 1).is_some_and(|t| t.text == "(") {
            // Scan the argument list: a construction is fine when any
            // identifier appears (a config field, a derivation call); a
            // literal-only argument is a hardcoded stream.
            let mut depth = 1i32;
            let mut j = i + 2;
            let mut has_ident = false;
            while j < toks.len() && depth > 0 && j - i < 100 {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                if toks[j].kind == crate::lexer::TokKind::Ident {
                    has_ident = true;
                }
                j += 1;
            }
            if !has_ident {
                push(
                    diags,
                    "R001",
                    ctx,
                    tok.line,
                    format!(
                        "seed_from_u64 with a hardcoded literal seed in deterministic code: \
                         derive the stream from the experiment's master seed instead \
                         ({} …)",
                        DERIVE_FNS.join("/")
                    ),
                );
            }
        }
    }
}

/// Idents whose appearance in a `let` initializer marks the binding as an
/// RNG value for R002.
const RNG_SOURCES: &[&str] = &["stream_rng", "seed_from_u64", "from_entropy", "SmallRng"];

fn check_r002(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if ctx.scope != Scope::Deterministic {
        return;
    }
    let toks = &ctx.lexed.toks;
    for item in &ctx.items.fns {
        if item.in_test
            || !matches!(ctx.kind, FileKind::Lib | FileKind::Bin)
            || !item
                .calls
                .iter()
                .any(|c| c == "scatter_gather" || c == "scatter_gather_stats")
        {
            continue;
        }
        // Token index range of this fn's span.
        let lo = toks.partition_point(|t| t.line < item.line);
        let hi = toks.partition_point(|t| t.line <= item.end_line);
        // RNG-valued `let` bindings: (name, line, index of the binding).
        let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
        let mut k = lo;
        while k < hi {
            if toks[k].text == "let" {
                let mut n = k + 1;
                if toks.get(n).is_some_and(|t| t.text == "mut") {
                    n += 1;
                }
                let name_idx = n;
                let is_binding = toks
                    .get(n)
                    .is_some_and(|t| t.kind == crate::lexer::TokKind::Ident)
                    && toks
                        .get(n + 1)
                        .is_some_and(|t| t.text == "=" || t.text == ":");
                if is_binding {
                    // Scan the initializer to the `;` for an RNG source.
                    let mut m = n + 1;
                    while m < hi && toks[m].text != ";" {
                        if RNG_SOURCES.contains(&toks[m].text.as_str()) {
                            bindings.push((&toks[name_idx].text, toks[name_idx].line, name_idx));
                            break;
                        }
                        m += 1;
                    }
                }
            }
            k += 1;
        }
        if bindings.is_empty() {
            continue;
        }
        let mut flagged = vec![false; bindings.len()];
        // Every scatter call in the span: does a binding declared before
        // it appear inside its argument parens (the task closure)?
        let mut k = lo;
        while k < hi {
            let is_scatter = (toks[k].text == "scatter_gather"
                || toks[k].text == "scatter_gather_stats")
                && toks.get(k + 1).is_some_and(|t| t.text == "(");
            if !is_scatter {
                k += 1;
                continue;
            }
            let mut depth = 1i32;
            let mut m = k + 2;
            while m < hi && depth > 0 {
                match toks[m].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                if depth > 0 && toks[m].kind == crate::lexer::TokKind::Ident {
                    for (b, &(name, line, idx)) in bindings.iter().enumerate() {
                        if idx < k && toks[m].text == name && !flagged[b] {
                            flagged[b] = true;
                            push(
                                diags,
                                "R002",
                                ctx,
                                line,
                                format!(
                                    "RNG value `{name}` built in `{}` crosses into the \
                                     scatter closure on line {}: draws then depend on task \
                                     scheduling — derive a per-task stream inside the \
                                     closure (sub_seed(master, index))",
                                    item.name, toks[k].line
                                ),
                            );
                        }
                    }
                }
                m += 1;
            }
            k = m;
        }
    }
}

/// Normalize `base/rel` textually, resolving `.` and `..` components.
/// Returns `None` when the path escapes the workspace root.
fn normalize_join(base_dir: &str, rel: &str) -> Option<String> {
    let mut parts: Vec<&str> = base_dir.split('/').filter(|p| !p.is_empty()).collect();
    for comp in rel.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                parts.pop()?;
            }
            other => parts.push(other),
        }
    }
    Some(parts.join("/"))
}

/// Z001 over one manifest.
pub fn check_manifest(rel_path: &str, src: &str, diags: &mut Vec<Diagnostic>) {
    let m = manifest::parse(src);
    let base_dir = rel_path.rsplit_once('/').map_or("", |(d, _)| d);
    let z001 = |line: u32, message: String| Diagnostic {
        rule: "Z001",
        severity: Severity::Error,
        file: rel_path.to_string(),
        line,
        message,
        suppressed: false,
    };
    for line in &m.build_dep_sections {
        diags.push(z001(
            *line,
            "[build-dependencies] is forbidden: the workspace has no compile-time codegen"
                .to_string(),
        ));
    }
    if let Some((script, line)) = &m.build_script {
        diags.push(z001(
            *line,
            format!(
                "package.build = {script:?} is forbidden: no build scripts in a hermetic workspace"
            ),
        ));
    }
    for dep in &m.deps {
        match dep.source {
            DepSource::Workspace => {}
            DepSource::External => diags.push(z001(
                dep.line,
                format!(
                    "dependency `{}` is external (registry/git): the workspace is hermetic, \
                     only in-tree crates/ paths are allowed",
                    dep.name
                ),
            )),
            DepSource::Path => {
                let inside = dep
                    .path
                    .as_deref()
                    .and_then(|p| normalize_join(base_dir, p))
                    .is_some_and(|norm| norm.starts_with("crates/"));
                if !inside {
                    diags.push(z001(
                        dep.line,
                        format!(
                            "dependency `{}` path {:?} resolves outside crates/: only in-tree \
                             crates are hermetic",
                            dep.name,
                            dep.path.as_deref().unwrap_or("")
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_known() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(is_known_rule(r.id));
            assert!(!r.summary.is_empty() && !r.explain.is_empty());
            for other in &RULES[i + 1..] {
                assert_ne!(r.id, other.id);
            }
        }
        assert!(rule_by_id("D001").is_some());
        assert!(rule_by_id("Q999").is_none());
    }

    #[test]
    fn normalize_join_resolves_parent_components() {
        assert_eq!(
            normalize_join("crates/exec", "../telemetry").as_deref(),
            Some("crates/telemetry")
        );
        assert_eq!(
            normalize_join("", "crates/core").as_deref(),
            Some("crates/core")
        );
        assert_eq!(normalize_join("crates/exec", "../../../other"), None);
    }

    #[test]
    fn manifest_rule_flags_external_and_passes_in_tree() {
        let mut diags = Vec::new();
        check_manifest(
            "crates/x/Cargo.toml",
            "[dependencies]\nmm-json = { path = \"../json\" }\nserde = \"1.0\"\n",
            &mut diags,
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("serde"));
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn manifest_rule_flags_paths_escaping_crates() {
        let mut diags = Vec::new();
        check_manifest(
            "crates/x/Cargo.toml",
            "[dependencies]\nvendored = { path = \"../../vendor/thing\" }\n",
            &mut diags,
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
    }
}
