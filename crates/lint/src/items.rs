//! Item extraction: the lightweight structural view the semantic rules
//! run on.
//!
//! From the lexed token stream of one file this module recovers just
//! enough structure for cross-file analysis — the `fn` items with their
//! line spans, the names each fn calls (an over-approximation: every
//! `name(`/`name::<T>(` inside the body, closures attributed to the
//! enclosing fn), and the *hazard sites* the R/F/P rule families reason
//! about. No syntax tree is built; like the token rules, everything is a
//! pattern over ident/punct sequences, which keeps the extractor fast
//! enough to run on every file of every warm `mmlint` invocation that
//! misses the cache.

use crate::lexer::{Lexed, TokKind};

/// The kinds of code site the graph rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// `stream_rng(master, <const literal>)` — the label R003 dedups.
    StreamLabel,
    /// An order-sensitive f64 reduction (`sum::<f64>()`, an f64-typed
    /// `.sum()`, a float-seeded `.fold(`, or a `+=` of a float literal).
    FloatReduce,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// An index expression whose subscript contains an `as` cast
    /// (`v[i as usize]`) — the P002 out-of-bounds panic shape.
    CastIndex,
}

impl HazardKind {
    /// One-letter code used by the analysis cache.
    pub fn code(self) -> char {
        match self {
            HazardKind::StreamLabel => 'S',
            HazardKind::FloatReduce => 'F',
            HazardKind::PanicMacro => 'P',
            HazardKind::CastIndex => 'C',
        }
    }

    /// Inverse of [`HazardKind::code`].
    pub fn from_code(c: char) -> Option<HazardKind> {
        match c {
            'S' => Some(HazardKind::StreamLabel),
            'F' => Some(HazardKind::FloatReduce),
            'P' => Some(HazardKind::PanicMacro),
            'C' => Some(HazardKind::CastIndex),
            _ => None,
        }
    }
}

/// One hazard site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// What kind of site this is.
    pub kind: HazardKind,
    /// 1-based line of the site.
    pub line: u32,
    /// Inside a `#[cfg(test)]` region?
    pub in_test: bool,
    /// Kind-specific payload: the normalized label for [`StreamLabel`],
    /// the matched pattern for [`FloatReduce`], the macro name for
    /// [`PanicMacro`].
    ///
    /// [`StreamLabel`]: HazardKind::StreamLabel
    /// [`FloatReduce`]: HazardKind::FloatReduce
    /// [`PanicMacro`]: HazardKind::PanicMacro
    pub detail: String,
}

/// One `fn` item with the facts the call graph needs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FnItem {
    /// The fn's name (last path segment only).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace.
    pub end_line: u32,
    /// Declared under `#[cfg(test)]` (or the attribute covers it)?
    pub in_test: bool,
    /// Names invoked in the body — both free fns and methods, closures
    /// included. Over-approximate and unresolved; resolution happens in
    /// the workspace graph.
    pub calls: Vec<String>,
    /// Hazard sites inside the body.
    pub hazards: Vec<Hazard>,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileItems {
    /// Every `fn` in lexical order (nested fns appear as separate items).
    pub fns: Vec<FnItem>,
    /// Hazards outside any fn body (const initializers and the like).
    pub loose_hazards: Vec<Hazard>,
}

impl FileItems {
    /// All hazards of the file — fn-attributed and loose.
    pub fn all_hazards(&self) -> impl Iterator<Item = &Hazard> {
        self.fns
            .iter()
            .flat_map(|f| f.hazards.iter())
            .chain(self.loose_hazards.iter())
    }
}

/// Keywords that look like calls when followed by `(` but are not.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "as", "in", "let", "move", "ref", "mut",
    "pub", "use", "mod", "impl", "fn", "struct", "enum", "trait", "type", "where", "unsafe",
    "else", "break", "continue", "dyn", "await", "async", "crate", "super",
];

/// Panic-family macro names (P001 sites when invoked with `!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Is this numeric-literal text a float (`2.5`, `1f64`) rather than an
/// integer? Hex literals are never floats even when their suffix-looking
/// tail contains `f`.
fn is_float_literal(text: &str) -> bool {
    !text.starts_with("0x")
        && (text.contains('.') || text.ends_with("f64") || text.ends_with("f32"))
}

/// Canonicalize a numeric literal (`0x5e5e`, `1_000u64`) to a decimal
/// string so the same label spelled differently still collides in R003.
/// Falls back to the raw text when nothing parses.
pub fn normalize_num(text: &str) -> String {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = match clean.strip_prefix("0x") {
        Some(hex) => (hex, 16u64),
        None => (clean.as_str(), 10u64),
    };
    let mut value = 0u64;
    let mut any = false;
    for c in digits.chars() {
        let Some(d) = c.to_digit(radix as u32) else {
            break;
        };
        any = true;
        value = value.wrapping_mul(radix).wrapping_add(u64::from(d));
    }
    if any {
        value.to_string()
    } else {
        text.to_string()
    }
}

/// Extract fns, calls, and hazard sites from a lexed file.
/// `test_ranges` are the `#[cfg(test)]` line spans from the engine.
pub fn extract(lexed: &Lexed, test_ranges: &[(u32, u32)]) -> FileItems {
    let toks = &lexed.toks;
    let in_test = |line: u32| test_ranges.iter().any(|&(s, e)| line >= s && line <= e);

    let mut out = FileItems::default();
    // (index into out.fns, brace depth the body opened at).
    let mut stack: Vec<(usize, i32)> = Vec::new();
    let mut depth = 0i32;
    // A `fn NAME` seen but its body `{` not yet reached; the counters
    // track signature parens/brackets so `fn f(x: [u8; 4])` survives and
    // a trait's braceless `fn f();` is dropped at the `;`.
    let mut pending: Option<(String, u32)> = None;
    let mut sig_paren = 0i32;
    let mut sig_bracket = 0i32;

    let push_hazard = |stack: &Vec<(usize, i32)>,
                       fns: &mut Vec<FnItem>,
                       loose: &mut Vec<Hazard>,
                       kind: HazardKind,
                       line: u32,
                       detail: String| {
        let hazard = Hazard {
            kind,
            line,
            in_test: in_test(line),
            detail,
        };
        match stack.last() {
            Some(&(fi, _)) => fns[fi].hazards.push(hazard),
            None => loose.push(hazard),
        }
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];

        // `fn NAME` opens a pending item (`Fn` trait bounds are `Fn`,
        // never lower-case, so the keyword test is unambiguous).
        if t.kind == TokKind::Ident && t.text == "fn" {
            if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                pending = Some((name.text.clone(), t.line));
                sig_paren = 0;
                sig_bracket = 0;
                i += 2;
                continue;
            }
        }

        match t.text.as_str() {
            "{" => {
                depth += 1;
                if let Some((name, line)) = pending.take() {
                    out.fns.push(FnItem {
                        name,
                        line,
                        end_line: line,
                        in_test: in_test(line),
                        calls: Vec::new(),
                        hazards: Vec::new(),
                    });
                    stack.push((out.fns.len() - 1, depth));
                }
            }
            "}" => {
                depth -= 1;
                while let Some(&(fi, d)) = stack.last() {
                    if d > depth {
                        out.fns[fi].end_line = t.line;
                        stack.pop();
                    } else {
                        break;
                    }
                }
            }
            "(" if pending.is_some() => sig_paren += 1,
            ")" if pending.is_some() => sig_paren -= 1,
            "[" if pending.is_some() => sig_bracket += 1,
            "]" if pending.is_some() => sig_bracket -= 1,
            ";" if pending.is_some() && sig_paren == 0 && sig_bracket == 0 => {
                // Braceless declaration (trait method): not an item here.
                pending = None;
            }
            _ => {}
        }

        // Call collection: `name(` and `name::<T>(`.
        if t.kind == TokKind::Ident && !NOT_CALLS.contains(&t.text.as_str()) {
            if let Some(&(fi, _)) = stack.last() {
                if is_call_at(lexed, i) {
                    out.fns[fi].calls.push(t.text.clone());
                }
            }
        }

        // Hazard sites.
        if t.kind == TokKind::Ident {
            if t.text == "stream_rng" && toks.get(i + 1).is_some_and(|n| n.text == "(") {
                if let Some(label) = const_second_arg(lexed, i + 1) {
                    push_hazard(
                        &stack,
                        &mut out.fns,
                        &mut out.loose_hazards,
                        HazardKind::StreamLabel,
                        t.line,
                        label,
                    );
                }
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.text == "!")
            {
                push_hazard(
                    &stack,
                    &mut out.fns,
                    &mut out.loose_hazards,
                    HazardKind::PanicMacro,
                    t.line,
                    t.text.clone(),
                );
            }
            if let Some(detail) = float_reduce_at(lexed, i) {
                push_hazard(
                    &stack,
                    &mut out.fns,
                    &mut out.loose_hazards,
                    HazardKind::FloatReduce,
                    t.line,
                    detail,
                );
            }
        }
        if t.text == "+"
            && toks.get(i + 1).is_some_and(|n| n.text == "=")
            && float_before_semicolon(lexed, i + 2)
        {
            push_hazard(
                &stack,
                &mut out.fns,
                &mut out.loose_hazards,
                HazardKind::FloatReduce,
                t.line,
                "+= float".to_string(),
            );
        }
        if t.text == "[" && is_index_open(lexed, i) && subscript_has_cast(lexed, i) {
            push_hazard(
                &stack,
                &mut out.fns,
                &mut out.loose_hazards,
                HazardKind::CastIndex,
                t.line,
                "as-cast subscript".to_string(),
            );
        }

        i += 1;
    }

    // Unclosed fns at EOF (truncated input): close at the last line.
    if let Some(last) = toks.last() {
        for &(fi, _) in &stack {
            out.fns[fi].end_line = last.line;
        }
    }
    out
}

/// Is the ident at `i` the callee of a call — followed by `(`, or by a
/// turbofish `::<...>(`?
fn is_call_at(lexed: &Lexed, i: usize) -> bool {
    let toks = &lexed.toks;
    match toks.get(i + 1) {
        Some(n) if n.text == "(" => true,
        Some(n) if n.text == ":" => {
            // `name::<...>(` — walk the generic args to the matching `>`.
            if toks.get(i + 2).is_none_or(|t| t.text != ":")
                || toks.get(i + 3).is_none_or(|t| t.text != "<")
            {
                return false;
            }
            let mut angle = 1i32;
            let mut j = i + 4;
            while j < toks.len() && angle > 0 && j - i < 40 {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    _ => {}
                }
                j += 1;
            }
            angle == 0 && toks.get(j).is_some_and(|t| t.text == "(")
        }
        _ => false,
    }
}

/// For a `stream_rng(` at `open` (index of the `(`): when the second
/// argument is exactly one numeric literal, its normalized value.
fn const_second_arg(lexed: &Lexed, open: usize) -> Option<String> {
    let toks = &lexed.toks;
    let mut pdepth = 1i32;
    let mut j = open + 1;
    // Skip the first argument up to the comma at depth 1.
    while j < toks.len() && j - open < 200 {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => pdepth += 1,
            ")" | "]" | "}" => {
                pdepth -= 1;
                if pdepth == 0 {
                    return None; // one-argument call
                }
            }
            "," if pdepth == 1 => break,
            _ => {}
        }
        j += 1;
    }
    let arg2 = toks.get(j + 1)?;
    let close = toks.get(j + 2)?;
    if arg2.kind == TokKind::Num && close.text == ")" {
        Some(normalize_num(&arg2.text))
    } else {
        None
    }
}

/// F-rule reduction patterns anchored at the ident `i`.
fn float_reduce_at(lexed: &Lexed, i: usize) -> Option<String> {
    let toks = &lexed.toks;
    let t = &toks[i];
    if t.text == "sum" {
        // `sum::<f64>(` — the explicit form.
        if toks.get(i + 1).is_some_and(|n| n.text == ":")
            && toks.get(i + 2).is_some_and(|n| n.text == ":")
            && toks.get(i + 3).is_some_and(|n| n.text == "<")
            && toks.get(i + 4).is_some_and(|n| n.text == "f64")
        {
            return Some("sum::<f64>()".to_string());
        }
        // `.sum()` whose statement is f64-typed (`let total: f64 = ...`).
        if i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && toks.get(i + 2).is_some_and(|n| n.text == ")")
        {
            let mut j = i - 1;
            let mut steps = 0usize;
            while j > 0 && steps < 60 {
                j -= 1;
                steps += 1;
                match toks[j].text.as_str() {
                    ";" | "{" | "}" => break,
                    "f64" => return Some("f64-typed sum()".to_string()),
                    _ => {}
                }
            }
        }
        return None;
    }
    // `.fold(<float literal>, ...)`.
    if t.text == "fold"
        && i > 0
        && toks[i - 1].text == "."
        && toks.get(i + 1).is_some_and(|n| n.text == "(")
    {
        let mut j = i + 2;
        let mut pdepth = 1i32;
        while j < toks.len() && j - i < 40 && pdepth > 0 {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => pdepth += 1,
                ")" | "]" | "}" => pdepth -= 1,
                "," if pdepth == 1 => break,
                _ => {}
            }
            if toks[j].kind == TokKind::Num && is_float_literal(&toks[j].text) {
                return Some("float-seeded fold()".to_string());
            }
            j += 1;
        }
    }
    None
}

/// Does a float literal appear between `from` and the statement's `;`?
fn float_before_semicolon(lexed: &Lexed, from: usize) -> bool {
    let toks = &lexed.toks;
    let mut saw_float = false;
    let mut j = from;
    while j < toks.len() && j - from < 40 {
        match toks[j].text.as_str() {
            ";" | "{" | "}" => break,
            // `(x * 1000.0) as u64` accumulates in integer space: the float
            // is quantized before the `+=`, so order cannot matter.
            "as" if toks[j].kind == TokKind::Ident
                && toks
                    .get(j + 1)
                    .is_some_and(|n| INT_TYPES.contains(&n.text.as_str())) =>
            {
                return false;
            }
            _ => {}
        }
        if toks[j].kind == TokKind::Num && is_float_literal(&toks[j].text) {
            saw_float = true;
        }
        j += 1;
    }
    saw_float
}

/// Primitive integer type names an `as` cast can quantize a float into.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Is the `[` at `i` an *index* expression (`expr[...]`) rather than an
/// array/slice type or literal? True when the previous token could end an
/// expression.
fn is_index_open(lexed: &Lexed, i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = &lexed.toks[i - 1];
    prev.kind == TokKind::Ident && !NOT_CALLS.contains(&prev.text.as_str())
        || prev.text == "]"
        || prev.text == ")"
}

/// Does the subscript opened at `i` contain an `as` cast?
fn subscript_has_cast(lexed: &Lexed, i: usize) -> bool {
    let toks = &lexed.toks;
    let mut bdepth = 1i32;
    let mut j = i + 1;
    while j < toks.len() && bdepth > 0 && j - i < 200 {
        match toks[j].text.as_str() {
            "[" => bdepth += 1,
            "]" => bdepth -= 1,
            "as" if bdepth >= 1 && toks[j].kind == TokKind::Ident => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        extract(&lex(src), &[])
    }

    #[test]
    fn fns_get_names_spans_and_nesting() {
        let src = "fn outer() {\n\
                   fn inner() { helper(); }\n\
                   top();\n\
                   }\n\
                   fn later() {}\n";
        let f = items(src);
        let names: Vec<&str> = f.fns.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "later"]);
        assert_eq!((f.fns[0].line, f.fns[0].end_line), (1, 4));
        assert_eq!(f.fns[1].calls, vec!["helper"]);
        assert_eq!(f.fns[0].calls, vec!["top"]);
    }

    #[test]
    fn calls_include_methods_paths_and_turbofish() {
        let src = "fn f() {\n\
                   let x = mmlab::campaign::city_network(w);\n\
                   x.render();\n\
                   let s = v.iter().sum::<u64>();\n\
                   }\n";
        let f = items(src);
        let calls = &f.fns[0].calls;
        assert!(calls.contains(&"city_network".to_string()), "{calls:?}");
        assert!(calls.contains(&"render".to_string()));
        assert!(calls.contains(&"sum".to_string()));
        assert!(calls.contains(&"iter".to_string()));
    }

    #[test]
    fn array_typed_params_do_not_end_the_signature() {
        let f = items("fn f(x: [u8; 4]) -> u8 { x[0] }\n");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "f");
    }

    #[test]
    fn trait_declarations_are_not_items() {
        let f = items("trait T { fn a(&self); fn b(&self) -> [u8; 2]; }\nfn real() {}\n");
        let names: Vec<&str> = f.fns.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn stream_label_hazard_only_for_const_labels() {
        let src = "fn f(seed: u64) {\n\
                   let a = stream_rng(seed, 0x5e5e);\n\
                   let b = stream_rng(seed, sub_seed(8, x));\n\
                   let c = stream_rng(master_of(q), 7);\n\
                   }\n";
        let f = items(src);
        let labels: Vec<(&str, u32)> = f.fns[0]
            .hazards
            .iter()
            .filter(|h| h.kind == HazardKind::StreamLabel)
            .map(|h| (h.detail.as_str(), h.line))
            .collect();
        assert_eq!(labels, vec![("24158", 2), ("7", 4)]);
    }

    #[test]
    fn float_reduce_patterns_fire_and_integer_sums_do_not() {
        let src = "fn f(v: &[f64]) -> f64 {\n\
                   let a = v.iter().sum::<f64>();\n\
                   let total: f64 = v.iter().map(|x| x * 2.0).sum();\n\
                   let b = v.iter().fold(0.0, |acc, x| acc + x);\n\
                   let mut acc = 0.0; acc += 1.5;\n\
                   let n: u64 = w.iter().sum();\n\
                   let m = w.iter().sum::<u64>();\n\
                   a\n\
                   }\n";
        let f = items(src);
        let reduces: Vec<u32> = f.fns[0]
            .hazards
            .iter()
            .filter(|h| h.kind == HazardKind::FloatReduce)
            .map(|h| h.line)
            .collect();
        assert_eq!(reduces, vec![2, 3, 4, 5]);
    }

    #[test]
    fn panic_macros_are_hazards() {
        let src = "fn f() { unreachable!(\"no\") }\nfn g() { other!(1) }\n";
        let f = items(src);
        assert_eq!(f.fns[0].hazards.len(), 1);
        assert_eq!(f.fns[0].hazards[0].kind, HazardKind::PanicMacro);
        assert_eq!(f.fns[0].hazards[0].detail, "unreachable");
        assert!(f.fns[1].hazards.is_empty());
    }

    #[test]
    fn cast_index_fires_on_subscripts_not_types() {
        let src = "fn f(v: &[u64], i: u32) -> u64 {\n\
                   let x: [u8; 4] = [0; 4];\n\
                   let a = v[i as usize];\n\
                   let b = v[3];\n\
                   a + u64::from(x[0]) + b\n\
                   }\n";
        let f = items(src);
        let casts: Vec<u32> = f.fns[0]
            .hazards
            .iter()
            .filter(|h| h.kind == HazardKind::CastIndex)
            .map(|h| h.line)
            .collect();
        assert_eq!(casts, vec![3]);
    }

    #[test]
    fn test_ranges_mark_fns_and_hazards() {
        let src = "fn prod() { v[i as usize]; }\n\
                   fn testish() { panic!(\"x\") }\n";
        let f = extract(&lex(src), &[(2, 2)]);
        assert!(!f.fns[0].in_test);
        assert!(f.fns[1].in_test);
        assert!(f.fns[1].hazards[0].in_test);
    }

    #[test]
    fn normalize_num_canonicalizes_spellings() {
        assert_eq!(normalize_num("0x5e5e"), "24158");
        assert_eq!(normalize_num("1_000"), "1000");
        assert_eq!(normalize_num("7u64"), "7");
        assert_eq!(normalize_num("abc"), "abc");
    }

    #[test]
    fn hazards_outside_fns_are_loose() {
        let f = items("static X: u64 = FOO[3 as usize];\nfn f() {}\n");
        assert_eq!(f.loose_hazards.len(), 1);
        assert_eq!(f.loose_hazards[0].kind, HazardKind::CastIndex);
    }
}
