//! A minimal `Cargo.toml` reader — just enough structure for Z001.
//!
//! The workspace's manifests use a narrow, regular TOML subset: `[section]`
//! headers and `key = value` lines where a dependency value is either an
//! inline table (`{ path = "...", ... }`), a `workspace = true` marker
//! (spelled inline or as `name.workspace = true`), or — what Z001 exists to
//! reject — a registry version requirement. Parsing that subset line by
//! line is deliberate: a full TOML parser would be a dependency, and Z001's
//! job is to keep dependencies out.

/// Which kind of requirement one dependency entry expresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepSource {
    /// `{ path = "..." }` — an in-tree crate.
    Path,
    /// `name.workspace = true` / `{ workspace = true }` — resolved through
    /// `[workspace.dependencies]`, which Z001 checks separately.
    Workspace,
    /// Anything else (`"1.0"`, `{ version = "..." }`, `{ git = "..." }`):
    /// an external requirement.
    External,
}

/// One dependency entry as written in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEntry {
    /// Dependency name (left-hand side, `.workspace` suffix stripped).
    pub name: String,
    /// 1-based line of the entry.
    pub line: u32,
    /// Where the dependency comes from.
    pub source: DepSource,
    /// The `path = "..."` value when present.
    pub path: Option<String>,
    /// The `[section]` the entry appeared in.
    pub section: String,
}

/// The parts of a manifest the lints look at.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Every dependency entry across all `*dependencies*` sections.
    pub deps: Vec<DepEntry>,
    /// Lines of `[build-dependencies]`-style section headers.
    pub build_dep_sections: Vec<u32>,
    /// `package.build = "..."` override, with its line.
    pub build_script: Option<(String, u32)>,
}

/// Does this `[section]` name collect dependency entries?
fn is_dep_section(name: &str) -> bool {
    name == "dependencies"
        || name == "dev-dependencies"
        || name == "build-dependencies"
        || name == "workspace.dependencies"
        || name.ends_with(".dependencies")
        || name.ends_with(".dev-dependencies")
        || name.ends_with(".build-dependencies")
}

/// Parse the manifest subset. Never fails: unrecognized lines are skipped,
/// which is safe because Z001 only needs dependency-shaped lines.
pub fn parse(src: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim().to_string();
            if section == "build-dependencies" || section.ends_with(".build-dependencies") {
                m.build_dep_sections.push(line_no);
            }
            continue;
        }
        let Some((key_part, value_part)) = line.split_once('=') else {
            continue;
        };
        let key = key_part.trim();
        let value = value_part.trim();
        if section == "package" && key == "build" {
            m.build_script = Some((unquote(value), line_no));
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        // `name.workspace = true` spelling.
        if let Some(name) = key.strip_suffix(".workspace") {
            m.deps.push(DepEntry {
                name: name.trim().to_string(),
                line: line_no,
                source: DepSource::Workspace,
                path: None,
                section: section.clone(),
            });
            continue;
        }
        let (source, path) = classify_value(value);
        m.deps.push(DepEntry {
            name: key.to_string(),
            line: line_no,
            source,
            path,
            section: section.clone(),
        });
    }
    m
}

/// Classify a dependency right-hand side.
fn classify_value(value: &str) -> (DepSource, Option<String>) {
    if value.starts_with('{') {
        let body = value.trim_start_matches('{').trim_end_matches('}');
        let mut path = None;
        let mut is_workspace = false;
        for field in body.split(',') {
            let Some((k, v)) = field.split_once('=') else {
                continue;
            };
            match k.trim() {
                "path" => path = Some(unquote(v.trim())),
                "workspace" if v.trim() == "true" => is_workspace = true,
                _ => {}
            }
        }
        if let Some(p) = path {
            (DepSource::Path, Some(p))
        } else if is_workspace {
            (DepSource::Workspace, None)
        } else {
            (DepSource::External, None)
        }
    } else {
        // Bare string: a registry version requirement.
        (DepSource::External, None)
    }
}

/// Strip surrounding quotes from a TOML string value.
fn unquote(s: &str) -> String {
    s.trim().trim_matches('"').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_path_workspace_and_external() {
        let m = parse(
            "[package]\nname = \"x\"\n\n[dependencies]\n\
             mm-json = { path = \"../json\" }\n\
             mmcore.workspace = true\n\
             serde = \"1.0\"\n\
             rand = { version = \"0.8\" }\n",
        );
        assert_eq!(m.deps.len(), 4);
        assert_eq!(m.deps[0].source, DepSource::Path);
        assert_eq!(m.deps[0].path.as_deref(), Some("../json"));
        assert_eq!(m.deps[1].source, DepSource::Workspace);
        assert_eq!(m.deps[2].source, DepSource::External);
        assert_eq!(m.deps[3].source, DepSource::External);
        assert_eq!(m.deps[2].line, 7);
    }

    #[test]
    fn build_dependency_sections_are_recorded() {
        let m = parse("[build-dependencies]\ncc = \"1.0\"\n");
        assert_eq!(m.build_dep_sections, vec![1]);
        assert_eq!(m.deps.len(), 1);
        assert_eq!(m.deps[0].section, "build-dependencies");
    }

    #[test]
    fn package_build_override_is_seen() {
        let m = parse("[package]\nbuild = \"gen.rs\"\n");
        assert_eq!(m.build_script, Some(("gen.rs".to_string(), 2)));
    }

    #[test]
    fn workspace_dependencies_section_is_a_dep_section() {
        let m = parse("[workspace.dependencies]\nmmcore = { path = \"crates/core\" }\n");
        assert_eq!(m.deps.len(), 1);
        assert_eq!(m.deps[0].source, DepSource::Path);
    }

    #[test]
    fn comments_and_noise_are_ignored() {
        let m = parse("# comment\n[dependencies]\n# another\nmm-rng = { path = \"../rng\" }\n");
        assert_eq!(m.deps.len(), 1);
    }
}
