//! The content-addressed per-file analysis cache.
//!
//! Warm `mmlint` runs re-analyze only changed files: phase 1 of the
//! engine (lex → extract → token rules → suppressions) is a pure function
//! of one file's path and bytes, so its result is cached under an FNV-1a
//! key of both, XORed with a *fingerprint* of the rule registry and cache
//! format — editing a rule or this module invalidates every entry at
//! once, the same RunStore-style keying the experiment layer uses for
//! campaign rounds. The graph phase always runs fresh (it is cheap and
//! workspace-global), consuming the cached [`CachedFile`] summaries.
//!
//! Entries are small versioned tab-separated text files; anything that
//! fails to parse — truncation, a concurrent writer, an unknown rule id
//! after a registry change — is simply a miss and gets re-analyzed and
//! rewritten. Corruption can cost time, never correctness.

use crate::diag::{Diagnostic, Severity};
use crate::items::{FileItems, FnItem, Hazard, HazardKind};
use crate::rules;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Bump to invalidate every cache entry on a format change.
const CACHE_VERSION: u32 = 1;

/// Everything phase 1 produces for one file.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedFile {
    /// Token-rule diagnostics, suppressions already applied (marked).
    pub diags: Vec<Diagnostic>,
    /// Extracted items for the graph phase.
    pub items: FileItems,
    /// `(line, rule)` suppressions naming graph-phase rules.
    pub graph_sups: Vec<(u32, String)>,
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The registry/format fingerprint folded into every key.
fn fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        let mut tag = format!("mmlc{CACHE_VERSION};{};", env!("CARGO_PKG_VERSION"));
        for r in rules::RULES {
            tag.push_str(r.id);
            tag.push(';');
        }
        fnv1a(tag.as_bytes())
    })
}

/// Cache key of one file: path, content, and the registry fingerprint.
pub fn key(rel_path: &str, content: &str) -> u64 {
    fnv1a(rel_path.as_bytes()) ^ fnv1a(content.as_bytes()).rotate_left(1) ^ fingerprint()
}

/// Path of the entry for `key` under `dir`.
fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.mmlc"))
}

/// Load the entry for `key`, or `None` on miss/corruption.
pub fn load(dir: &Path, key: u64) -> Option<CachedFile> {
    let text = std::fs::read_to_string(entry_path(dir, key)).ok()?;
    decode(&text)
}

/// Persist an entry. Best-effort: a failed write only costs the next run
/// a re-analysis, so errors are swallowed.
pub fn store(dir: &Path, key: u64, entry: &CachedFile) {
    let _ = std::fs::write(entry_path(dir, key), encode(entry));
}

/// Tab-free rendering of free text (messages never contain tabs today;
/// this keeps the format safe if one ever does).
fn clean(s: &str) -> String {
    s.replace(['\t', '\n'], " ")
}

/// Serialize an entry. Line-oriented, tab-separated:
/// `D` diagnostic, `G` graph suppression, `F` fn item (its `C` calls and
/// `H` hazards follow), `L` loose hazard.
pub fn encode(entry: &CachedFile) -> String {
    let mut out = format!("mmlc {CACHE_VERSION}\n");
    for d in &entry.diags {
        out.push_str(&format!(
            "D\t{}\t{}\t{}\t{}\t{}\n",
            d.rule,
            if d.severity == Severity::Error {
                'e'
            } else {
                'w'
            },
            d.line,
            u8::from(d.suppressed),
            clean(&d.message)
        ));
    }
    for (line, rule) in &entry.graph_sups {
        out.push_str(&format!("G\t{line}\t{rule}\n"));
    }
    let hazard_line = |out: &mut String, tag: char, h: &Hazard| {
        out.push_str(&format!(
            "{tag}\t{}\t{}\t{}\t{}\n",
            h.kind.code(),
            h.line,
            u8::from(h.in_test),
            clean(&h.detail)
        ));
    };
    for h in &entry.items.loose_hazards {
        hazard_line(&mut out, 'L', h);
    }
    for f in &entry.items.fns {
        out.push_str(&format!(
            "F\t{}\t{}\t{}\t{}\n",
            f.name,
            f.line,
            f.end_line,
            u8::from(f.in_test)
        ));
        for c in &f.calls {
            out.push_str(&format!("C\t{c}\n"));
        }
        for h in &f.hazards {
            hazard_line(&mut out, 'H', h);
        }
    }
    out
}

/// Parse an entry; `None` on any anomaly.
pub fn decode(text: &str) -> Option<CachedFile> {
    let mut lines = text.lines();
    if lines.next()? != format!("mmlc {CACHE_VERSION}") {
        return None;
    }
    let mut entry = CachedFile {
        diags: Vec::new(),
        items: FileItems::default(),
        graph_sups: Vec::new(),
    };
    for line in lines {
        let mut parts = line.split('\t');
        match parts.next()? {
            "D" => {
                let rule = rules::rule_by_id(parts.next()?)?.id;
                let severity = match parts.next()? {
                    "e" => Severity::Error,
                    "w" => Severity::Warn,
                    _ => return None,
                };
                let line_no: u32 = parts.next()?.parse().ok()?;
                let suppressed = match parts.next()? {
                    "0" => false,
                    "1" => true,
                    _ => return None,
                };
                let message = parts.next()?.to_string();
                entry.diags.push(Diagnostic {
                    rule,
                    severity,
                    // The caller owns the path; it is patched in on load.
                    file: String::new(),
                    line: line_no,
                    message,
                    suppressed,
                });
            }
            "G" => {
                let line_no: u32 = parts.next()?.parse().ok()?;
                let rule = parts.next()?.to_string();
                entry.graph_sups.push((line_no, rule));
            }
            "F" => {
                let name = parts.next()?.to_string();
                let line_no: u32 = parts.next()?.parse().ok()?;
                let end_line: u32 = parts.next()?.parse().ok()?;
                let in_test = parts.next()? == "1";
                entry.items.fns.push(FnItem {
                    name,
                    line: line_no,
                    end_line,
                    in_test,
                    calls: Vec::new(),
                    hazards: Vec::new(),
                });
            }
            "C" => {
                let call = parts.next()?.to_string();
                entry.items.fns.last_mut()?.calls.push(call);
            }
            tag @ ("H" | "L") => {
                let kind = HazardKind::from_code(parts.next()?.chars().next()?)?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let in_test = parts.next()? == "1";
                let detail = parts.next()?.to_string();
                let hazard = Hazard {
                    kind,
                    line: line_no,
                    in_test,
                    detail,
                };
                if tag == "H" {
                    entry.items.fns.last_mut()?.hazards.push(hazard);
                } else {
                    entry.items.loose_hazards.push(hazard);
                }
            }
            _ => return None,
        }
    }
    Some(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CachedFile {
        CachedFile {
            diags: vec![Diagnostic {
                rule: "E001",
                severity: Severity::Error,
                file: String::new(),
                line: 12,
                message: "unwrap() in library code".to_string(),
                suppressed: true,
            }],
            items: FileItems {
                fns: vec![FnItem {
                    name: "drive".to_string(),
                    line: 3,
                    end_line: 40,
                    in_test: false,
                    calls: vec!["scatter_gather".to_string(), "shard".to_string()],
                    hazards: vec![Hazard {
                        kind: HazardKind::FloatReduce,
                        line: 17,
                        in_test: false,
                        detail: "sum::<f64>()".to_string(),
                    }],
                }],
                loose_hazards: vec![Hazard {
                    kind: HazardKind::StreamLabel,
                    line: 1,
                    in_test: false,
                    detail: "7".to_string(),
                }],
            },
            graph_sups: vec![(9, "P002".to_string())],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let entry = sample();
        let decoded = decode(&encode(&entry)).expect("round trip");
        assert_eq!(decoded, entry);
    }

    #[test]
    fn corruption_and_unknown_rules_miss() {
        assert!(decode("").is_none());
        assert!(decode("mmlc 999\n").is_none());
        let mut entry = sample();
        entry.diags.clear();
        let good = encode(&entry);
        assert!(decode(&good).is_some());
        assert!(decode(&good.replace("F\t", "X\t")).is_none());
        assert!(decode("mmlc 1\nD\tQ999\te\t1\t0\tmsg\n").is_none());
        assert!(decode("mmlc 1\nC\torphan-call\n").is_none());
    }

    #[test]
    fn keys_separate_paths_contents_and_survive_reruns() {
        let a = key("crates/core/src/a.rs", "fn a() {}");
        assert_eq!(a, key("crates/core/src/a.rs", "fn a() {}"));
        assert_ne!(a, key("crates/core/src/b.rs", "fn a() {}"));
        assert_ne!(a, key("crates/core/src/a.rs", "fn a() { }"));
    }

    #[test]
    fn store_and_load_through_a_directory() {
        let dir = std::env::temp_dir().join(format!("mmlc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let entry = sample();
        let k = key("crates/x.rs", "src");
        assert!(load(&dir, k).is_none());
        store(&dir, k, &entry);
        assert_eq!(load(&dir, k), Some(entry));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
