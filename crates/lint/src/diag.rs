//! Diagnostics: what a rule reports, and the human/JSON renderings.

use mm_json::{Json, ToJson};

/// How bad a finding is. `Error` fails the CI gate; `Warn` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: printed, never fails the run.
    Warn,
    /// Gate-failing.
    Error,
}

impl Severity {
    /// Lower-case label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D001`, `Z001`, ...).
    pub rule: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line (0 for whole-file findings such as a missing manifest).
    pub line: u32,
    /// Human explanation of this specific occurrence.
    pub message: String,
}

impl Diagnostic {
    /// The `file:line: RULE severity: message` single-line rendering.
    pub fn human(&self) -> String {
        format!(
            "{}:{}: {} {}: {}",
            self.file,
            self.line,
            self.rule,
            self.severity.label(),
            self.message
        )
    }
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rule", Json::Str(self.rule.to_string())),
            ("severity", Json::Str(self.severity.label().to_string())),
            ("file", Json::Str(self.file.clone())),
            ("line", Json::Num(f64::from(self.line))),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

/// A whole run's findings plus scan statistics, as serialized by `--json`.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of manifests (Cargo.toml) scanned.
    pub manifests_scanned: usize,
}

impl Report {
    /// Count of gate-failing findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Count of advisory findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// True when nothing gate-failing was found.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::Num(1.0)),
            ("files_scanned", Json::Num(self.files_scanned as f64)),
            (
                "manifests_scanned",
                Json::Num(self.manifests_scanned as f64),
            ),
            ("errors", Json::Num(self.errors() as f64)),
            ("warnings", Json::Num(self.warnings() as f64)),
            ("diagnostics", self.diagnostics.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_json::FromJson;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "D001",
            severity: Severity::Error,
            file: "crates/core/src/ue.rs".into(),
            line: 87,
            message: "HashMap in a deterministic crate".into(),
        }
    }

    #[test]
    fn human_rendering_is_file_line_rule() {
        assert_eq!(
            diag().human(),
            "crates/core/src/ue.rs:87: D001 error: HashMap in a deterministic crate"
        );
    }

    #[test]
    fn report_json_round_trips_through_the_strict_parser() {
        let report = Report {
            diagnostics: vec![diag()],
            files_scanned: 3,
            manifests_scanned: 2,
        };
        let text = report.to_json_string();
        let v = Json::from_json_str(&text).expect("valid mm-json");
        assert_eq!(v.get("errors").and_then(Json::as_u64), Some(1));
        let diags = v
            .get("diagnostics")
            .and_then(|d| d.as_array())
            .expect("array");
        assert_eq!(diags[0].get("rule").and_then(Json::as_str), Some("D001"));
        assert_eq!(diags[0].get("line").and_then(Json::as_u64), Some(87));
    }
}
