//! Diagnostics: what a rule reports, and the human/JSON renderings.

use mm_json::{Json, ToJson};

/// How bad a finding is. `Error` fails the CI gate; `Warn` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: printed, never fails the run.
    Warn,
    /// Gate-failing.
    Error,
}

impl Severity {
    /// Lower-case label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D001`, `Z001`, ...).
    pub rule: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line (0 for whole-file findings such as a missing manifest).
    pub line: u32,
    /// Human explanation of this specific occurrence.
    pub message: String,
    /// Matched by an `mm-allow` suppression? Suppressed findings stay in
    /// the report (so `--json` consumers and the suppression audit see
    /// them) but never fail the gate and are not printed in text mode.
    pub suppressed: bool,
}

impl Diagnostic {
    /// The `file:line: RULE severity: message` single-line rendering.
    pub fn human(&self) -> String {
        format!(
            "{}:{}: {} {}: {}",
            self.file,
            self.line,
            self.rule,
            self.severity.label(),
            self.message
        )
    }
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rule", Json::Str(self.rule.to_string())),
            ("severity", Json::Str(self.severity.label().to_string())),
            ("file", Json::Str(self.file.clone())),
            ("line", Json::Num(f64::from(self.line))),
            ("message", Json::Str(self.message.clone())),
            ("suppressed", Json::Bool(self.suppressed)),
        ])
    }
}

/// A whole run's findings plus scan statistics, as serialized by `--json`.
#[derive(Debug)]
pub struct Report {
    /// All findings — suppressed ones included — sorted by
    /// (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of manifests (Cargo.toml) scanned.
    pub manifests_scanned: usize,
    /// Files whose phase-1 analysis was served from the content-addressed
    /// cache (0 when caching is off).
    pub cache_hits: usize,
}

impl Report {
    /// Count of gate-failing findings (suppressed ones don't fail).
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error && !d.suppressed)
            .count()
    }

    /// Count of advisory findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn && !d.suppressed)
            .count()
    }

    /// Count of findings matched by an `mm-allow` suppression.
    pub fn suppressed(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.suppressed).count()
    }

    /// True when nothing gate-failing was found.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::Num(2.0)),
            ("files_scanned", Json::Num(self.files_scanned as f64)),
            (
                "manifests_scanned",
                Json::Num(self.manifests_scanned as f64),
            ),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("errors", Json::Num(self.errors() as f64)),
            ("warnings", Json::Num(self.warnings() as f64)),
            ("suppressed", Json::Num(self.suppressed() as f64)),
            ("diagnostics", self.diagnostics.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_json::FromJson;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "D001",
            severity: Severity::Error,
            file: "crates/core/src/ue.rs".into(),
            line: 87,
            message: "HashMap in a deterministic crate".into(),
            suppressed: false,
        }
    }

    #[test]
    fn human_rendering_is_file_line_rule() {
        assert_eq!(
            diag().human(),
            "crates/core/src/ue.rs:87: D001 error: HashMap in a deterministic crate"
        );
    }

    #[test]
    fn report_json_round_trips_through_the_strict_parser() {
        let mut quiet = diag();
        quiet.suppressed = true;
        let report = Report {
            diagnostics: vec![diag(), quiet],
            files_scanned: 3,
            manifests_scanned: 2,
            cache_hits: 1,
        };
        let text = report.to_json_string();
        let v = Json::from_json_str(&text).expect("valid mm-json");
        assert_eq!(v.get("version").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("errors").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("suppressed").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("cache_hits").and_then(Json::as_u64), Some(1));
        let diags = v
            .get("diagnostics")
            .and_then(|d| d.as_array())
            .expect("array");
        assert_eq!(diags[0].get("rule").and_then(Json::as_str), Some("D001"));
        assert_eq!(diags[0].get("line").and_then(Json::as_u64), Some(87));
        assert_eq!(
            diags[0].get("suppressed").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            diags[1].get("suppressed").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn suppressed_findings_do_not_fail_the_gate() {
        let mut quiet = diag();
        quiet.suppressed = true;
        let report = Report {
            diagnostics: vec![quiet],
            files_scanned: 1,
            manifests_scanned: 0,
            cache_hits: 0,
        };
        assert!(report.is_clean());
        assert_eq!(report.suppressed(), 1);
    }
}
