//! The analysis engine: file classification, `#[cfg(test)]` region
//! tracking, suppression handling, and the workspace walk.

use crate::diag::{Diagnostic, Report, Severity};
use crate::lexer::{self, Lexed};
use crate::rules;
use std::path::{Path, PathBuf};

/// Determinism scope of a crate. `Sched` crates (the executor, telemetry,
/// and the bench harness) are allowed wall clocks and unordered
/// containers because their nondeterminism is fenced off from simulation
/// output; everything else must be bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Must produce byte-identical output for any thread count and re-run.
    Deterministic,
    /// Scheduler/observability domain: wall clocks and races tolerated.
    Sched,
}

/// What kind of target a `.rs` file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/` outside `src/bin/`).
    Lib,
    /// A binary target (`src/bin/`).
    Bin,
    /// Integration tests (`tests/`).
    Test,
    /// Examples (`examples/`).
    Example,
    /// Benches (`benches/`).
    Bench,
}

/// Crate directory names whose scope is [`Scope::Sched`].
const SCHED_CRATES: &[&str] = &["bench", "exec", "telemetry"];

/// Classify a workspace-relative path into (crate name, scope, kind).
pub fn classify(rel_path: &str) -> (String, Scope, FileKind) {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("mobility-mm")
        .to_string();
    let scope = if SCHED_CRATES.contains(&crate_name.as_str()) {
        Scope::Sched
    } else {
        Scope::Deterministic
    };
    let kind = if rel_path.contains("/tests/") || rel_path.starts_with("tests/") {
        FileKind::Test
    } else if rel_path.contains("/benches/") || rel_path.starts_with("benches/") {
        FileKind::Bench
    } else if rel_path.contains("/examples/") || rel_path.starts_with("examples/") {
        FileKind::Example
    } else if rel_path.contains("/src/bin/") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    (crate_name, scope, kind)
}

/// Everything a token rule may look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Crate directory name (`core`, `exec`, ...) or `mobility-mm`.
    pub crate_name: &'a str,
    /// Determinism scope of the crate.
    pub scope: Scope,
    /// Target kind of the file.
    pub kind: FileKind,
    /// Lexed tokens and comments.
    pub lexed: &'a Lexed,
    /// `(start, end)` line ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl FileCtx<'_> {
    /// Is `line` inside a `#[cfg(test)]` item (or a test-only file)?
    pub fn in_test(&self, line: u32) -> bool {
        self.kind == FileKind::Test
            || self
                .test_ranges
                .iter()
                .any(|&(s, e)| line >= s && line <= e)
    }

    /// Comment text on `line` or in the contiguous comment block directly
    /// above it — where A001 looks for `SAFETY:` / `relaxed-ok:`
    /// justifications (which often wrap over several comment lines).
    pub fn nearby_comment_contains(&self, line: u32, needle: &str) -> bool {
        if self
            .lexed
            .comment_on(line)
            .is_some_and(|c| c.contains(needle))
        {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l > 0 {
            match self.lexed.comment_on(l) {
                Some(c) if c.contains(needle) => return true,
                Some(_) => l -= 1, // keep walking up the comment block
                None => return false,
            }
        }
        false
    }
}

/// Line ranges covered by `#[cfg(test)]` items, computed from the token
/// stream: each attribute claims the following item, brace-balanced (or up
/// to the `;` for a braceless item).
fn test_ranges(lexed: &Lexed) -> Vec<(u32, u32)> {
    let t = &lexed.toks;
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < t.len() {
        let is_attr = t[i].text == "#"
            && t[i + 1].text == "["
            && t[i + 2].text == "cfg"
            && t[i + 3].text == "("
            && t[i + 4].text == "test"
            && t[i + 5].text == ")"
            && t[i + 6].text == "]";
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = t[i].line;
        let mut j = i + 7;
        // Scan to the item's opening brace (or a `;` for braceless items).
        while j < t.len() && t[j].text != "{" && t[j].text != ";" {
            j += 1;
        }
        if j >= t.len() || t[j].text == ";" {
            let end = t.get(j).map_or(start_line, |tok| tok.line);
            ranges.push((start_line, end));
            i = j + 1;
            continue;
        }
        let mut depth = 1i32;
        j += 1;
        while j < t.len() && depth > 0 {
            match t[j].text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let end = t
            .get(j.saturating_sub(1))
            .map_or(start_line, |tok| tok.line);
        ranges.push((start_line, end));
        i = j;
    }
    ranges
}

/// One parsed `mm-allow` suppression comment.
#[derive(Debug)]
struct Suppression {
    line: u32,
    rule: String,
    used: bool,
}

/// Parse suppressions out of a file's comments. A suppression must be the
/// *start* of its comment: `mm-allow(RULE): reason`. Malformed ones
/// (unknown rule, missing reason) become S001 diagnostics directly.
fn parse_suppressions(path: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (line, text) in &lexed.comments {
        let Some(rest) = text.strip_prefix("mm-allow(") else {
            continue;
        };
        let s001 = |msg: String| Diagnostic {
            rule: "S001",
            severity: Severity::Error,
            file: path.to_string(),
            line: *line,
            message: msg,
        };
        let Some((rule, after)) = rest.split_once(')') else {
            diags.push(s001(
                "unterminated mm-allow suppression (missing ')')".to_string(),
            ));
            continue;
        };
        let rule = rule.trim();
        if !rules::is_known_rule(rule) {
            diags.push(s001(format!("mm-allow names unknown rule {rule:?}")));
            continue;
        }
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diags.push(s001(format!(
                "mm-allow({rule}) has no reason — write `mm-allow({rule}): why this is sound`"
            )));
            continue;
        }
        out.push(Suppression {
            line: *line,
            rule: rule.to_string(),
            used: false,
        });
    }
    out
}

/// Lint one source file: lex, run every token rule, then apply
/// suppressions (same line or the line above) and flag unused ones.
pub fn analyze_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let (crate_name, scope, kind) = classify(rel_path);
    let lexed = lexer::lex(src);
    let ranges = test_ranges(&lexed);
    let ctx = FileCtx {
        path: rel_path,
        crate_name: &crate_name,
        scope,
        kind,
        lexed: &lexed,
        test_ranges: ranges,
    };

    let mut diags = Vec::new();
    for rule in rules::RULES {
        if let Some(check) = rule.check {
            check(&ctx, &mut diags);
        }
    }

    let mut meta = Vec::new();
    let mut sups = parse_suppressions(rel_path, &lexed, &mut meta);
    diags.retain(|d| {
        let hit = sups
            .iter_mut()
            .find(|s| s.rule == d.rule && (s.line == d.line || s.line + 1 == d.line));
        match hit {
            Some(s) => {
                s.used = true;
                false
            }
            None => true,
        }
    });
    for s in &sups {
        if !s.used {
            meta.push(Diagnostic {
                rule: "S001",
                severity: Severity::Error,
                file: rel_path.to_string(),
                line: s.line,
                message: format!(
                    "unused suppression: mm-allow({}) matches no diagnostic on this or the next line",
                    s.rule
                ),
            });
        }
    }
    diags.extend(meta);
    diags
}

/// Lint one `Cargo.toml` (hermeticity rules only — no suppressions:
/// manifests must be clean, not excused).
pub fn analyze_manifest_src(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    rules::check_manifest(rel_path, src, &mut diags);
    diags
}

/// Directory names never descended into: build output, VCS state, and
/// lint fixture files (which contain violations on purpose).
const SKIP_DIRS: &[&str] = &["target", "fixtures", "node_modules"];

/// Recursively collect workspace files, sorted for deterministic reports.
fn walk(dir: &Path, root: &Path, files: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, root, files)?;
        } else if name == "Cargo.toml" || name == "build.rs" || name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push((rel, path.clone()));
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;

    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;
    let mut manifests_scanned = 0usize;
    for (rel, path) in &files {
        if rel == "Cargo.toml" || rel.ends_with("/Cargo.toml") {
            let src = std::fs::read_to_string(path)?;
            diagnostics.extend(analyze_manifest_src(rel, &src));
            manifests_scanned += 1;
        } else if rel.ends_with("build.rs") && !rel.contains("/src/") {
            // A build script's existence alone breaks hermeticity: it runs
            // arbitrary host code at compile time.
            diagnostics.push(Diagnostic {
                rule: "Z001",
                severity: Severity::Error,
                file: rel.clone(),
                line: 1,
                message: "build.rs is forbidden: the workspace builds hermetically with no \
                          compile-time codegen"
                    .to_string(),
            });
        } else {
            let src = std::fs::read_to_string(path)?;
            diagnostics.extend(analyze_source(rel, &src));
            files_scanned += 1;
        }
    }
    diagnostics.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    Ok(Report {
        diagnostics,
        files_scanned,
        manifests_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_shapes() {
        let (name, scope, kind) = classify("crates/core/src/ue.rs");
        assert_eq!(
            (name.as_str(), scope, kind),
            ("core", Scope::Deterministic, FileKind::Lib)
        );
        let (name, scope, kind) = classify("crates/exec/src/lib.rs");
        assert_eq!(
            (name.as_str(), scope, kind),
            ("exec", Scope::Sched, FileKind::Lib)
        );
        let (_, _, kind) = classify("crates/experiments/src/bin/mmx.rs");
        assert_eq!(kind, FileKind::Bin);
        let (name, _, kind) = classify("tests/determinism.rs");
        assert_eq!((name.as_str(), kind), ("mobility-mm", FileKind::Test));
        let (_, _, kind) = classify("examples/quickstart.rs");
        assert_eq!(kind, FileKind::Example);
        let (_, scope, kind) = classify("crates/bench/benches/analysis.rs");
        assert_eq!((scope, kind), (Scope::Sched, FileKind::Bench));
        // The storage layer is library code under the full deterministic
        // discipline (no HashMap iteration order, no wall clock).
        let (name, scope, kind) = classify("crates/store/src/block.rs");
        assert_eq!(
            (name.as_str(), scope, kind),
            ("store", Scope::Deterministic, FileKind::Lib)
        );
        // The event engine lives in netsim, not in the scheduling crates:
        // it interleaves UE streams but must itself stay fully
        // deterministic (golden-hash gated), so the strict scope applies.
        let (name, scope, kind) = classify("crates/netsim/src/sched.rs");
        assert_eq!(
            (name.as_str(), scope, kind),
            ("netsim", Scope::Deterministic, FileKind::Lib)
        );
    }

    #[test]
    fn cfg_test_region_is_excluded() {
        let src = "pub fn lib_code() { v.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { v.unwrap() }\n\
                   }\n";
        let diags = analyze_source("crates/core/src/x.rs", src);
        let e001: Vec<_> = diags.iter().filter(|d| d.rule == "E001").collect();
        assert_eq!(e001.len(), 1, "{diags:?}");
        assert_eq!(e001[0].line, 1);
    }

    #[test]
    fn suppression_on_same_or_previous_line_applies_once() {
        let src = "pub fn f() {\n\
                   v.unwrap(); // mm-allow(E001): infallible by construction\n\
                   // mm-allow(E001): checked above\n\
                   w.unwrap();\n\
                   x.unwrap();\n\
                   }\n";
        let diags = analyze_source("crates/core/src/x.rs", src);
        let e001: Vec<_> = diags.iter().filter(|d| d.rule == "E001").collect();
        assert_eq!(e001.len(), 1, "{diags:?}");
        assert_eq!(e001[0].line, 5);
        assert!(diags.iter().all(|d| d.rule != "S001"));
    }

    #[test]
    fn reasonless_and_unknown_and_unused_suppressions_are_s001() {
        let src = "// mm-allow(E001)\n\
                   // mm-allow(Q999): no such rule\n\
                   // mm-allow(D001): nothing here to suppress\n\
                   pub fn f() {}\n";
        let diags = analyze_source("crates/core/src/x.rs", src);
        let s001: Vec<_> = diags.iter().filter(|d| d.rule == "S001").collect();
        assert_eq!(s001.len(), 3, "{diags:?}");
    }

    #[test]
    fn doc_comments_mentioning_the_syntax_are_not_suppressions() {
        // The marker only counts at the start of a comment, so prose like
        // this line (or rustdoc) never parses as a suppression.
        let src = "/// Suppress with `mm-allow(E001): reason` on the line.\npub fn f() {}\n";
        let diags = analyze_source("crates/core/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
