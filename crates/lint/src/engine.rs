//! The analysis engine: file classification, `#[cfg(test)]` region
//! tracking, suppression handling, and the two-phase workspace pass.
//!
//! Phase 1 is per-file and pure: lex, extract items, run the token rules,
//! parse and apply suppressions. Its result is content-addressed in the
//! analysis cache (see `cache.rs`) and the files are scattered over the
//! mm-exec executor — the ordered gather plus the final (file, line,
//! rule) sort keep `mmlint` output byte-identical at any `MM_THREADS`.
//! Phase 2 is workspace-global and always fresh: the crate dependency
//! graph from the manifests, the approximate call graph, and the
//! R003/F001/P001/P002 rules (see `graph.rs`), followed by the
//! graph-phase suppression audit (S002).

use crate::cache::{self, CachedFile};
use crate::diag::{Diagnostic, Report, Severity};
use crate::graph::{self, FileSummary};
use crate::items;
use crate::lexer::{self, Lexed};
use crate::manifest::{self, DepSource};
use crate::rules;
use mm_exec::Executor;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Determinism scope of a crate. `Sched` crates (the executor, telemetry,
/// and the bench harness) are allowed wall clocks and unordered
/// containers because their nondeterminism is fenced off from simulation
/// output; everything else must be bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Must produce byte-identical output for any thread count and re-run.
    Deterministic,
    /// Scheduler/observability domain: wall clocks and races tolerated.
    Sched,
}

/// What kind of target a `.rs` file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/` outside `src/bin/`).
    Lib,
    /// A binary target (`src/bin/`).
    Bin,
    /// Integration tests (`tests/`).
    Test,
    /// Examples (`examples/`).
    Example,
    /// Benches (`benches/`).
    Bench,
}

/// Crate directory names whose scope is [`Scope::Sched`]: timing is their
/// job (bench), or they manage wall-clock-bound machinery the
/// deterministic simulation layer never reads (exec worker stats,
/// telemetry span shims, net serving deadlines).
const SCHED_CRATES: &[&str] = &["bench", "exec", "telemetry", "net"];

/// Classify a workspace-relative path into (crate name, scope, kind).
pub fn classify(rel_path: &str) -> (String, Scope, FileKind) {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("mobility-mm")
        .to_string();
    let scope = if SCHED_CRATES.contains(&crate_name.as_str()) {
        Scope::Sched
    } else {
        Scope::Deterministic
    };
    let kind = if rel_path.contains("/tests/") || rel_path.starts_with("tests/") {
        FileKind::Test
    } else if rel_path.contains("/benches/") || rel_path.starts_with("benches/") {
        FileKind::Bench
    } else if rel_path.contains("/examples/") || rel_path.starts_with("examples/") {
        FileKind::Example
    } else if rel_path.contains("/src/bin/") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    (crate_name, scope, kind)
}

/// Everything a token rule may look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Crate directory name (`core`, `exec`, ...) or `mobility-mm`.
    pub crate_name: &'a str,
    /// Determinism scope of the crate.
    pub scope: Scope,
    /// Target kind of the file.
    pub kind: FileKind,
    /// Lexed tokens and comments.
    pub lexed: &'a Lexed,
    /// Extracted fns, calls, and hazard sites (see `items.rs`).
    pub items: &'a items::FileItems,
    /// `(start, end)` line ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl FileCtx<'_> {
    /// Is `line` inside a `#[cfg(test)]` item (or a test-only file)?
    pub fn in_test(&self, line: u32) -> bool {
        self.kind == FileKind::Test
            || self
                .test_ranges
                .iter()
                .any(|&(s, e)| line >= s && line <= e)
    }

    /// Comment text on `line` or in the contiguous comment block directly
    /// above it — where A001 looks for `SAFETY:` / `relaxed-ok:`
    /// justifications (which often wrap over several comment lines).
    pub fn nearby_comment_contains(&self, line: u32, needle: &str) -> bool {
        if self
            .lexed
            .comment_on(line)
            .is_some_and(|c| c.contains(needle))
        {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l > 0 {
            match self.lexed.comment_on(l) {
                Some(c) if c.contains(needle) => return true,
                Some(_) => l -= 1, // keep walking up the comment block
                None => return false,
            }
        }
        false
    }
}

/// Line ranges covered by `#[cfg(test)]` items, computed from the token
/// stream: each attribute claims the following item, brace-balanced (or up
/// to the `;` for a braceless item).
fn test_ranges(lexed: &Lexed) -> Vec<(u32, u32)> {
    let t = &lexed.toks;
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < t.len() {
        let is_attr = t[i].text == "#"
            && t[i + 1].text == "["
            && t[i + 2].text == "cfg"
            && t[i + 3].text == "("
            && t[i + 4].text == "test"
            && t[i + 5].text == ")"
            && t[i + 6].text == "]";
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = t[i].line;
        let mut j = i + 7;
        // Scan to the item's opening brace (or a `;` for braceless items).
        while j < t.len() && t[j].text != "{" && t[j].text != ";" {
            j += 1;
        }
        if j >= t.len() || t[j].text == ";" {
            let end = t.get(j).map_or(start_line, |tok| tok.line);
            ranges.push((start_line, end));
            i = j + 1;
            continue;
        }
        let mut depth = 1i32;
        j += 1;
        while j < t.len() && depth > 0 {
            match t[j].text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let end = t
            .get(j.saturating_sub(1))
            .map_or(start_line, |tok| tok.line);
        ranges.push((start_line, end));
        i = j;
    }
    ranges
}

/// One parsed `mm-allow` suppression comment.
#[derive(Debug)]
struct Suppression {
    line: u32,
    rule: String,
    used: bool,
}

/// Parse suppressions out of a file's comments. A suppression must be the
/// *start* of its comment: `mm-allow(RULE): reason`. Malformed ones
/// (unknown rule, missing reason) become S001 diagnostics directly.
fn parse_suppressions(path: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (line, text) in &lexed.comments {
        let Some(rest) = text.strip_prefix("mm-allow(") else {
            continue;
        };
        let s001 = |msg: String| Diagnostic {
            rule: "S001",
            severity: Severity::Error,
            file: path.to_string(),
            line: *line,
            message: msg,
            suppressed: false,
        };
        let Some((rule, after)) = rest.split_once(')') else {
            diags.push(s001(
                "unterminated mm-allow suppression (missing ')')".to_string(),
            ));
            continue;
        };
        let rule = rule.trim();
        if !rules::is_known_rule(rule) {
            diags.push(s001(format!("mm-allow names unknown rule {rule:?}")));
            continue;
        }
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diags.push(s001(format!(
                "mm-allow({rule}) has no reason — write `mm-allow({rule}): why this is sound`"
            )));
            continue;
        }
        out.push(Suppression {
            line: *line,
            rule: rule.to_string(),
            used: false,
        });
    }
    out
}

/// Phase 1 for one file: lex, extract items, run every token rule, apply
/// token-rule suppressions (same line or the line above — matched ones
/// are *marked*, not dropped), flag unused ones as S001, and hold
/// suppressions naming graph-phase rules for phase 2.
fn analyze_file(rel_path: &str, src: &str) -> CachedFile {
    let (crate_name, scope, kind) = classify(rel_path);
    let lexed = lexer::lex(src);
    let ranges = test_ranges(&lexed);
    let extracted = items::extract(&lexed, &ranges);
    let ctx = FileCtx {
        path: rel_path,
        crate_name: &crate_name,
        scope,
        kind,
        lexed: &lexed,
        items: &extracted,
        test_ranges: ranges,
    };

    let mut diags = Vec::new();
    for rule in rules::RULES {
        if let Some(check) = rule.check {
            check(&ctx, &mut diags);
        }
    }

    let mut meta = Vec::new();
    let mut sups = parse_suppressions(rel_path, &lexed, &mut meta);
    let mut graph_sups = Vec::new();
    sups.retain(|s| {
        if graph::GRAPH_RULES.contains(&s.rule.as_str()) {
            graph_sups.push((s.line, s.rule.clone()));
            false
        } else {
            true
        }
    });
    for d in &mut diags {
        let hit = sups
            .iter_mut()
            .find(|s| s.rule == d.rule && (s.line == d.line || s.line + 1 == d.line));
        if let Some(s) = hit {
            s.used = true;
            d.suppressed = true;
        }
    }
    for s in &sups {
        if !s.used {
            meta.push(Diagnostic {
                rule: "S001",
                severity: Severity::Error,
                file: rel_path.to_string(),
                line: s.line,
                message: format!(
                    "unused suppression: mm-allow({}) matches no diagnostic on this or the next line",
                    s.rule
                ),
                suppressed: false,
            });
        }
    }
    diags.extend(meta);
    CachedFile {
        diags,
        items: extracted,
        graph_sups,
    }
}

/// Lint one source file through phase 1 alone. Suppressed findings are
/// returned with `suppressed: true`; graph-phase rules need the whole
/// workspace and never fire here — use [`analyze_files`] for those.
pub fn analyze_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    analyze_file(rel_path, src).diags
}

/// Lint one `Cargo.toml` (hermeticity rules only — no suppressions:
/// manifests must be clean, not excused).
pub fn analyze_manifest_src(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    rules::check_manifest(rel_path, src, &mut diags);
    diags
}

/// Run the full two-phase pipeline over in-memory `(path, source)` pairs
/// — the workspace analysis without any filesystem. Manifest entries
/// (paths ending in `Cargo.toml`) contribute hermeticity checks and crate
/// dependency edges; with no manifests, call resolution widens to every
/// file. This is what the graph-rule fixtures drive.
pub fn analyze_files(files: &[(&str, &str)], strict_suppress: bool) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let mut summaries = Vec::new();
    let mut manifests = Vec::new();
    for (rel, src) in files {
        if *rel == "Cargo.toml" || rel.ends_with("/Cargo.toml") {
            diagnostics.extend(analyze_manifest_src(rel, src));
            manifests.push((rel.to_string(), src.to_string()));
            continue;
        }
        let fa = analyze_file(rel, src);
        let (crate_name, scope, kind) = classify(rel);
        diagnostics.extend(fa.diags);
        summaries.push(FileSummary {
            path: rel.to_string(),
            crate_name,
            scope,
            kind,
            items: fa.items,
            graph_sups: fa.graph_sups,
        });
    }
    let crate_deps = crate_deps_from_manifests(&manifests);
    finish_graph_phase(&summaries, &crate_deps, strict_suppress, &mut diagnostics);
    sort_diags(&mut diagnostics);
    diagnostics
}

/// Crate dependency edges (directory-name space) from the manifest
/// sources: `path` deps resolve by their last path component, `workspace`
/// deps through the root `[workspace.dependencies]` table, and the root
/// package's own deps file under the `mobility-mm` pseudo-crate.
fn crate_deps_from_manifests(manifests: &[(String, String)]) -> BTreeMap<String, BTreeSet<String>> {
    let mut name_to_dir: BTreeMap<String, String> = BTreeMap::new();
    for (rel, src) in manifests {
        if rel != "Cargo.toml" {
            continue;
        }
        for dep in &manifest::parse(src).deps {
            if dep.section == "workspace.dependencies" {
                if let Some(dir) = dep.path.as_deref().and_then(|p| p.strip_prefix("crates/")) {
                    name_to_dir.insert(dep.name.clone(), dir.to_string());
                }
            }
        }
    }
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (rel, src) in manifests {
        let crate_name = if rel == "Cargo.toml" {
            "mobility-mm".to_string()
        } else {
            match rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
            {
                Some(dir) => dir.to_string(),
                None => continue,
            }
        };
        let deps = out.entry(crate_name).or_default();
        for dep in &manifest::parse(src).deps {
            if dep.section != "dependencies" {
                continue;
            }
            match dep.source {
                DepSource::Path => {
                    if let Some(dir) = dep.path.as_deref().and_then(|p| p.rsplit('/').next()) {
                        deps.insert(dir.to_string());
                    }
                }
                DepSource::Workspace => {
                    if let Some(dir) = name_to_dir.get(&dep.name) {
                        deps.insert(dir.clone());
                    }
                }
                DepSource::External => {}
            }
        }
    }
    out
}

/// Phase 2: run the graph rules, apply the held graph-phase suppressions
/// (marking, like phase 1), and audit stale ones as S002 — advisory by
/// default, gate-failing under `--strict-suppress`.
fn finish_graph_phase(
    summaries: &[FileSummary],
    crate_deps: &BTreeMap<String, BTreeSet<String>>,
    strict_suppress: bool,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let mut graph_diags = graph::run_graph_rules(summaries, crate_deps);
    let mut sups: Vec<(usize, u32, &str, bool)> = summaries
        .iter()
        .enumerate()
        .flat_map(|(i, s)| {
            s.graph_sups
                .iter()
                .map(move |(line, rule)| (i, *line, rule.as_str(), false))
        })
        .collect();
    for d in &mut graph_diags {
        let hit = sups.iter_mut().find(|(i, line, rule, _)| {
            summaries[*i].path == d.file
                && *rule == d.rule
                && (*line == d.line || *line + 1 == d.line)
        });
        if let Some(s) = hit {
            s.3 = true;
            d.suppressed = true;
        }
    }
    diagnostics.append(&mut graph_diags);
    for (i, line, rule, used) in sups {
        if !used {
            diagnostics.push(Diagnostic {
                rule: "S002",
                severity: if strict_suppress {
                    Severity::Error
                } else {
                    Severity::Warn
                },
                file: summaries[i].path.clone(),
                line,
                message: format!(
                    "unused suppression: mm-allow({rule}) matches no workspace-analysis \
                     diagnostic on this or the next line — prune it"
                ),
                suppressed: false,
            });
        }
    }
}

/// The deterministic report order.
fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
}

/// Directory names never descended into: build output (which also hosts
/// the default cache dir), VCS state, and lint fixture files (which
/// contain violations on purpose).
const SKIP_DIRS: &[&str] = &["target", "fixtures", "node_modules"];

/// Recursively collect workspace files, sorted for deterministic reports.
fn walk(dir: &Path, root: &Path, files: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, root, files)?;
        } else if name == "Cargo.toml" || name == "build.rs" || name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push((rel, path.clone()));
        }
    }
    Ok(())
}

/// Knobs for a workspace analysis.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Directory for the content-addressed phase-1 cache; `None` disables
    /// caching (the library default — `mmlint` passes
    /// `<root>/target/mmlint-cache` unless `--no-cache`).
    pub cache_dir: Option<PathBuf>,
    /// Escalate S002 (stale graph-phase suppressions) to an error.
    pub strict_suppress: bool,
}

/// Lint the whole workspace rooted at `root` with default options.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    analyze_workspace_with(root, &LintOptions::default())
}

/// Lint the whole workspace rooted at `root`. Phase 1 scatters per-file
/// work over the ambient executor (`MM_THREADS`); the ordered gather and
/// the final sort keep the report byte-identical at any thread count and
/// any cache state.
pub fn analyze_workspace_with(root: &Path, opts: &LintOptions) -> std::io::Result<Report> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;

    let mut diagnostics = Vec::new();
    let mut manifests: Vec<(String, String)> = Vec::new();
    let mut rs_files: Vec<(String, PathBuf)> = Vec::new();
    for (rel, path) in files {
        if rel == "Cargo.toml" || rel.ends_with("/Cargo.toml") {
            let src = std::fs::read_to_string(&path)?;
            diagnostics.extend(analyze_manifest_src(&rel, &src));
            manifests.push((rel, src));
        } else if rel.ends_with("build.rs") && !rel.contains("/src/") {
            // A build script's existence alone breaks hermeticity: it runs
            // arbitrary host code at compile time.
            diagnostics.push(Diagnostic {
                rule: "Z001",
                severity: Severity::Error,
                file: rel.clone(),
                line: 1,
                message: "build.rs is forbidden: the workspace builds hermetically with no \
                          compile-time codegen"
                    .to_string(),
                suppressed: false,
            });
        } else {
            rs_files.push((rel, path));
        }
    }
    let manifests_scanned = manifests.len();
    let files_scanned = rs_files.len();
    let crate_deps = crate_deps_from_manifests(&manifests);

    // An unusable cache dir silently disables caching: correctness never
    // depends on it.
    let cache_dir: Option<PathBuf> = opts
        .cache_dir
        .as_ref()
        .and_then(|d| std::fs::create_dir_all(d).ok().map(|()| d.clone()));

    let exec = Executor::from_env();
    type Outcome = Result<(String, CachedFile, bool), String>;
    let outcomes: Vec<Outcome> = exec.scatter_gather(rs_files, |_, (rel, path)| {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{rel}: {e}"))?;
        if let Some(dir) = &cache_dir {
            let k = cache::key(&rel, &src);
            if let Some(mut hit) = cache::load(dir, k) {
                for d in &mut hit.diags {
                    d.file.clone_from(&rel);
                }
                return Ok((rel, hit, true));
            }
            let fresh = analyze_file(&rel, &src);
            cache::store(dir, k, &fresh);
            Ok((rel, fresh, false))
        } else {
            let fresh = analyze_file(&rel, &src);
            Ok((rel, fresh, false))
        }
    });

    let mut summaries = Vec::new();
    let mut cache_hits = 0usize;
    for outcome in outcomes {
        let (rel, fa, hit) = outcome.map_err(std::io::Error::other)?;
        cache_hits += usize::from(hit);
        diagnostics.extend(fa.diags);
        let (crate_name, scope, kind) = classify(&rel);
        summaries.push(FileSummary {
            path: rel,
            crate_name,
            scope,
            kind,
            items: fa.items,
            graph_sups: fa.graph_sups,
        });
    }
    finish_graph_phase(
        &summaries,
        &crate_deps,
        opts.strict_suppress,
        &mut diagnostics,
    );
    sort_diags(&mut diagnostics);
    Ok(Report {
        diagnostics,
        files_scanned,
        manifests_scanned,
        cache_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_shapes() {
        let (name, scope, kind) = classify("crates/core/src/ue.rs");
        assert_eq!(
            (name.as_str(), scope, kind),
            ("core", Scope::Deterministic, FileKind::Lib)
        );
        let (name, scope, kind) = classify("crates/exec/src/lib.rs");
        assert_eq!(
            (name.as_str(), scope, kind),
            ("exec", Scope::Sched, FileKind::Lib)
        );
        let (_, _, kind) = classify("crates/experiments/src/bin/mmx.rs");
        assert_eq!(kind, FileKind::Bin);
        let (name, _, kind) = classify("tests/determinism.rs");
        assert_eq!((name.as_str(), kind), ("mobility-mm", FileKind::Test));
        let (_, _, kind) = classify("examples/quickstart.rs");
        assert_eq!(kind, FileKind::Example);
        let (_, scope, kind) = classify("crates/bench/benches/analysis.rs");
        assert_eq!((scope, kind), (Scope::Sched, FileKind::Bench));
        // The storage layer is library code under the full deterministic
        // discipline (no HashMap iteration order, no wall clock).
        let (name, scope, kind) = classify("crates/store/src/block.rs");
        assert_eq!(
            (name.as_str(), scope, kind),
            ("store", Scope::Deterministic, FileKind::Lib)
        );
        // The event engine lives in netsim, not in the scheduling crates:
        // it interleaves UE streams but must itself stay fully
        // deterministic (golden-hash gated), so the strict scope applies.
        let (name, scope, kind) = classify("crates/netsim/src/sched.rs");
        assert_eq!(
            (name.as_str(), scope, kind),
            ("netsim", Scope::Deterministic, FileKind::Lib)
        );
    }

    #[test]
    fn cfg_test_region_is_excluded() {
        let src = "pub fn lib_code() { v.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { v.unwrap() }\n\
                   }\n";
        let diags = analyze_source("crates/core/src/x.rs", src);
        let e001: Vec<_> = diags.iter().filter(|d| d.rule == "E001").collect();
        assert_eq!(e001.len(), 1, "{diags:?}");
        assert_eq!(e001[0].line, 1);
    }

    #[test]
    fn suppressions_mark_without_dropping() {
        let src = "pub fn f() {\n\
                   v.unwrap(); // mm-allow(E001): infallible by construction\n\
                   // mm-allow(E001): checked above\n\
                   w.unwrap();\n\
                   x.unwrap();\n\
                   }\n";
        let diags = analyze_source("crates/core/src/x.rs", src);
        let active: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "E001" && !d.suppressed)
            .collect();
        assert_eq!(active.len(), 1, "{diags:?}");
        assert_eq!(active[0].line, 5);
        // The two suppressed findings stay in the report, marked.
        let quiet = diags
            .iter()
            .filter(|d| d.rule == "E001" && d.suppressed)
            .count();
        assert_eq!(quiet, 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule != "S001"));
    }

    #[test]
    fn reasonless_and_unknown_and_unused_suppressions_are_s001() {
        let src = "// mm-allow(E001)\n\
                   // mm-allow(Q999): no such rule\n\
                   // mm-allow(D001): nothing here to suppress\n\
                   pub fn f() {}\n";
        let diags = analyze_source("crates/core/src/x.rs", src);
        let s001: Vec<_> = diags.iter().filter(|d| d.rule == "S001").collect();
        assert_eq!(s001.len(), 3, "{diags:?}");
    }

    #[test]
    fn doc_comments_mentioning_the_syntax_are_not_suppressions() {
        // The marker only counts at the start of a comment, so prose like
        // this line (or rustdoc) never parses as a suppression.
        let src = "/// Suppress with `mm-allow(E001): reason` on the line.\npub fn f() {}\n";
        let diags = analyze_source("crates/core/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn graph_rules_fire_through_analyze_files_and_suppress() {
        let entry = "fn main() { go(); }\n";
        let lib = "pub fn go(v: &[u64], i: u32) -> u64 {\n\
                   // mm-allow(P002): i is a validated event code < 10\n\
                   v[i as usize]\n\
                   }\n\
                   pub fn also(v: &[u64], i: u32) -> u64 { go(v, i); v[i as usize] }\n";
        let files = [
            ("crates/experiments/src/bin/mmx.rs", entry),
            ("crates/netsim/src/sched.rs", lib),
        ];
        let diags = analyze_files(&files, false);
        let p002: Vec<(u32, bool)> = diags
            .iter()
            .filter(|d| d.rule == "P002")
            .map(|d| (d.line, d.suppressed))
            .collect();
        // Line 3 is suppressed (comment above); line 5 fires — but `also`
        // is unreachable from main, so only the suppressed one exists.
        assert_eq!(p002, vec![(3, true)], "{diags:?}");
        assert!(diags.iter().all(|d| d.rule != "S002"), "{diags:?}");
    }

    #[test]
    fn stale_graph_suppressions_become_s002_and_strict_escalates() {
        let files = [(
            "crates/netsim/src/sched.rs",
            "// mm-allow(F001): nothing here any more\npub fn quiet() {}\n",
        )];
        let relaxed = analyze_files(&files, false);
        let s002: Vec<_> = relaxed.iter().filter(|d| d.rule == "S002").collect();
        assert_eq!(s002.len(), 1, "{relaxed:?}");
        assert_eq!(s002[0].severity, Severity::Warn);
        let strict = analyze_files(&files, true);
        let s002: Vec<_> = strict.iter().filter(|d| d.rule == "S002").collect();
        assert_eq!(s002[0].severity, Severity::Error);
    }

    #[test]
    fn manifests_feed_crate_deps_into_resolution() {
        let root = "[workspace]\nmembers = [\"crates/*\"]\n\
                    [workspace.dependencies]\n\
                    mmnetsim = { path = \"crates/netsim\" }\n\
                    mm-store = { path = \"crates/store\" }\n";
        let exp_manifest = "[package]\nname = \"mmexperiments\"\n\
                            [dependencies]\nmmnetsim.workspace = true\n";
        let files = [
            ("Cargo.toml", root),
            ("crates/experiments/Cargo.toml", exp_manifest),
            (
                "crates/experiments/src/bin/mmx.rs",
                "fn main() { helper(); }\n",
            ),
            (
                "crates/netsim/src/x.rs",
                "pub fn helper() { panic!(\"dep\") }\n",
            ),
            (
                "crates/store/src/y.rs",
                "pub fn helper() { panic!(\"not a dep\") }\n",
            ),
        ];
        let diags = analyze_files(&files, false);
        let p001: Vec<&str> = diags
            .iter()
            .filter(|d| d.rule == "P001")
            .map(|d| d.file.as_str())
            .collect();
        assert_eq!(p001, vec!["crates/netsim/src/x.rs"], "{diags:?}");
    }
}
