//! A comment- and string-aware Rust lexer.
//!
//! The lint rules only need a token stream, not a syntax tree: every rule
//! in the registry is expressible as a pattern over identifier/punctuation
//! sequences plus the comments attached to nearby lines. The lexer's one
//! hard job is to *never* mistake string or comment contents for code —
//! `"HashMap"` in a doc string must not trip D001 — so it handles the full
//! Rust literal surface: nested block comments, raw strings with hash
//! fences, byte strings, char literals, and the char-vs-lifetime
//! ambiguity.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `spawn`, ...).
    Ident,
    /// A single punctuation character (`.`, `(`, `:`, `{`, ...).
    Punct,
    /// String, byte-string or raw-string literal (contents dropped).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`) — kept distinct so `'a` is never a char literal.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// The text for idents, puncts, and numeric literals (the semantic
    /// rules need number payloads: stream labels for R003, float literals
    /// for F001); empty for string/char literals, whose contents must
    /// never look like code.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// The lexed view of one source file: code tokens plus per-line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comment bodies keyed by the 1-based line they *start* on. A line
    /// holding several comments concatenates them.
    pub comments: Vec<(u32, String)>,
}

impl Lexed {
    /// All comment text attached to `line`, concatenated.
    pub fn comment_on(&self, line: u32) -> Option<&str> {
        self.comments
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, c)| c.as_str())
    }
}

/// Tokenize Rust source. Invalid UTF-8 must be filtered by the caller;
/// lexically invalid code degrades gracefully (unknown bytes become
/// single-character punct tokens) rather than failing the whole file.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Push a comment body, merging with an existing entry for the line.
    fn push_comment(out: &mut Lexed, line: u32, text: &str) {
        if let Some((_, existing)) = out.comments.iter_mut().find(|(l, _)| *l == line) {
            existing.push(' ');
            existing.push_str(text);
        } else {
            out.comments.push((line, text.to_string()));
        }
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                push_comment(&mut out, line, src[start..j].trim());
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                push_comment(&mut out, start_line, src[start..end].trim());
                i = j;
            }
            b'"' => {
                let start_line = line;
                i = skip_string(b, i + 1, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'r' | b'b' if starts_special_literal(b, i) => {
                let start_line = line;
                i = skip_special_literal(b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime; everything else is a char.
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                let is_lifetime = j > i + 1 && (j >= b.len() || b[j] != b'\'');
                if is_lifetime {
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: String::new(),
                        line,
                    });
                    i = j;
                } else {
                    // Char literal: handle escapes; at most a few bytes.
                    let mut k = i + 1;
                    if k < b.len() && b[k] == b'\\' {
                        k += 2;
                        // \u{...}
                        while k < b.len() && b[k] != b'\'' {
                            k += 1;
                        }
                    } else {
                        // One (possibly multi-byte) character.
                        k += 1;
                        while k < b.len() && b[k] != b'\'' && k - i < 8 {
                            k += 1;
                        }
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = (k + 1).min(b.len());
                }
            }
            c if c.is_ascii_digit() => {
                let start_line = line;
                let start = i;
                i = skip_number(b, i);
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..j].to_string(),
                    line,
                });
                i = j;
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Does the `r`/`b` at `i` open a raw/byte literal (vs. a plain ident)?
fn starts_special_literal(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(b'"') | Some(b'#')) && raw_fence_follows(b, i + 1),
        b'b' => match b.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => raw_fence_follows(b, i + 2),
            _ => false,
        },
        _ => false,
    }
}

/// After an `r`, is the next run `#*"` (a raw-string fence)?
fn raw_fence_follows(b: &[u8], mut j: usize) -> bool {
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Skip a normal `"..."` body starting *after* the opening quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, or `b'.'` starting at
/// the prefix character.
fn skip_special_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
        if i < b.len() && b[i] == b'\'' {
            // Byte literal b'x' / b'\n'.
            i += 1;
            if i < b.len() && b[i] == b'\\' {
                i += 2;
            } else {
                i += 1;
            }
            while i < b.len() && b[i] != b'\'' {
                i += 1;
            }
            return (i + 1).min(b.len());
        }
    }
    if i < b.len() && b[i] == b'r' {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
        if hashes == 0 {
            // A raw string with no fence still ignores backslash escapes.
            while i < b.len() {
                match b[i] {
                    b'"' => return i + 1,
                    b'\n' => {
                        *line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            return i;
        }
        // Scan for `"` followed by `hashes` hash marks.
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
                i += 1;
                continue;
            }
            if b[i] == b'"' {
                let mut k = i + 1;
                let mut seen = 0usize;
                while k < b.len() && b[k] == b'#' && seen < hashes {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k;
                }
            }
            i += 1;
        }
        return i;
    }
    // Plain normal string after a stray prefix (b"..."): the caller only
    // reaches here with b[i] == b'"' handled above, but stay safe.
    skip_string(b, i, line)
}

/// Skip a numeric literal starting at a digit: decimal/hex/octal/binary,
/// underscores, one fractional part, exponents, and type suffixes — while
/// *not* consuming a method call after the literal (`0.5f64.powf`).
fn skip_number(b: &[u8], mut i: usize) -> usize {
    if b[i] == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return i;
    }
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // One fraction, only when a digit follows the dot (so `1.max(2)` and
    // range `1..n` keep their dots).
    if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    }
    // Exponent.
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        let mut j = i + 1;
        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < b.len() && b[j].is_ascii_digit() {
            i = j;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (f64, u32, usize...): consume ident chars, but stop at a
    // dot so the following method call lexes as its own tokens.
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code_words() {
        let src = r##"
            let x = "HashMap::new()"; // HashMap in a comment
            /* Instant::now() in a block comment */
            let r = r#"SystemTime::now()"#;
            let b = b"unsafe";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn comments_are_captured_per_line() {
        let src = "let a = 1; // first\nlet b = 2; /* second */\n";
        let lexed = lex(src);
        assert_eq!(lexed.comment_on(1), Some("first"));
        assert_eq!(lexed.comment_on(2), Some("second"));
        assert_eq!(lexed.comment_on(3), None);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x'; let esc = '\\'';";
        let lexed = lex(src);
        let lifetimes = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 2);
        // The fn body survived the literal handling.
        assert!(lexed.toks.iter().any(|t| t.text == "str"));
    }

    #[test]
    fn float_suffix_does_not_swallow_method_calls() {
        let ids = idents("let y = 0.5f64.powf(2.0);");
        assert!(ids.contains(&"powf".to_string()), "{ids:?}");
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let src = "let s = \"a\nb\nc\";\nlet t = 1;";
        let lexed = lex(src);
        let t_tok = lexed.toks.iter().find(|t| t.text == "t").unwrap();
        assert_eq!(t_tok.line, 4);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let ids = idents("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(ids, vec!["let", "x"]);
    }

    #[test]
    fn numeric_literals_keep_their_text() {
        let lexed = lex("let a = 0x5e5e; let b = 1_000u64; let c = 2.5;");
        let nums: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0x5e5e", "1_000u64", "2.5"]);
    }

    #[test]
    fn hex_and_underscore_literals_lex() {
        let lexed = lex("let m = 0xFF_u64; let n = 1_000_000; let r = 1..n;");
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Num).count(),
            3
        );
        // The range dots survive as puncts.
        assert_eq!(lexed.toks.iter().filter(|t| t.text == ".").count(), 2);
    }
}
