//! The workspace graph: crate dependency closure, name-resolved
//! approximate call graph, reachability, and the graph-phase rules.
//!
//! Phase 2 of the engine (see `engine.rs`) hands this module one
//! [`FileSummary`] per source file — classification plus the extracted
//! items — and the crate dependency edges read from the manifests. From
//! those it builds a call graph by *name resolution*: a call site `f(`
//! resolves to every production `fn f` in the caller's crate or its
//! dependency closure. That is deliberately over-approximate (no type
//! information, methods resolve by bare name), which is the right
//! direction for the rules built on top: reachability-gated rules may
//! flag a hazard that a precise analysis would prove dead, and the
//! suppression machinery (with its staleness audit) is the escape hatch —
//! but a hazard on a genuinely hot path can never hide behind a
//! resolution miss.

use crate::diag::{Diagnostic, Severity};
use crate::engine::{FileKind, Scope};
use crate::items::{FileItems, HazardKind};
use std::collections::{BTreeMap, BTreeSet};

/// Files whose f64 reductions *are* the sanctioned kernels: the
/// count-based `ValueCounts`/`Welford` aggregation layer and the ordered
/// scalar kernels in mmcore. F001 sends every other scatter-reachable
/// reduction here.
pub const KERNEL_FILES: &[&str] = &[
    "crates/core/src/kernel.rs",
    "crates/mmlab/src/agg.rs",
    "crates/mmlab/src/stats.rs",
];

/// Rule ids resolved in the graph phase (suppressions naming these are
/// held per-file and applied after the workspace pass).
pub const GRAPH_RULES: &[&str] = &["R003", "F001", "P001", "P002"];

/// Per-file facts carried from phase 1 into the workspace pass.
#[derive(Debug, Clone)]
pub struct FileSummary {
    /// Workspace-relative path.
    pub path: String,
    /// Crate directory name (`core`, `exec`, ...) or `mobility-mm`.
    pub crate_name: String,
    /// Determinism scope of the crate.
    pub scope: Scope,
    /// Target kind of the file.
    pub kind: FileKind,
    /// Extracted fns, calls, and hazards.
    pub items: FileItems,
    /// `(line, rule)` of suppressions naming graph rules, applied after
    /// this pass.
    pub graph_sups: Vec<(u32, String)>,
}

/// A node of the call graph: (file index, fn index within the file).
type Node = (usize, usize);

/// The resolved workspace view.
struct Graph<'a> {
    files: &'a [FileSummary],
    /// fn name → every production node defining it.
    by_name: BTreeMap<&'a str, Vec<Node>>,
    /// crate → crates visible to it (dependency closure, self included).
    closure: BTreeMap<&'a str, BTreeSet<&'a str>>,
}

impl<'a> Graph<'a> {
    fn build(files: &'a [FileSummary], crate_deps: &'a BTreeMap<String, BTreeSet<String>>) -> Self {
        let mut by_name: BTreeMap<&str, Vec<Node>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            // Test fns never become graph nodes: a #[test] calling a
            // panicky helper must not make that helper "reachable".
            if file.kind == FileKind::Test {
                continue;
            }
            for (gi, item) in file.items.fns.iter().enumerate() {
                if !item.in_test {
                    by_name.entry(&item.name).or_default().push((fi, gi));
                }
            }
        }
        // Transitive dependency closure per crate, self included.
        let mut closure: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for name in crate_deps.keys() {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut frontier = vec![name.as_str()];
            while let Some(c) = frontier.pop() {
                if seen.insert(c) {
                    if let Some(deps) = crate_deps.get(c) {
                        frontier.extend(deps.iter().map(String::as_str));
                    }
                }
            }
            closure.insert(name.as_str(), seen);
        }
        Graph {
            files,
            by_name,
            closure,
        }
    }

    /// Nodes a call to `name` from `caller_crate` may land on. Without
    /// dependency facts for the crate (in-memory analyses), resolution
    /// widens to the whole workspace.
    fn resolve(&self, caller_crate: &str, name: &str) -> impl Iterator<Item = Node> + '_ {
        let visible = self.closure.get(caller_crate);
        self.by_name
            .get(name)
            .into_iter()
            .flatten()
            .filter(move |&&(fi, _)| match visible {
                Some(set) => set.contains(self.files[fi].crate_name.as_str()),
                None => true,
            })
            .copied()
    }

    /// BFS over resolved call edges from `starts` (start nodes included).
    fn reachable(&self, starts: Vec<Node>) -> BTreeSet<Node> {
        let mut seen: BTreeSet<Node> = BTreeSet::new();
        let mut frontier = starts;
        while let Some(node) = frontier.pop() {
            if !seen.insert(node) {
                continue;
            }
            let (fi, gi) = node;
            let file = &self.files[fi];
            for call in &file.items.fns[gi].calls {
                for next in self.resolve(&file.crate_name, call) {
                    if !seen.contains(&next) {
                        frontier.push(next);
                    }
                }
            }
        }
        seen
    }

    /// `fn main` of every binary target — the P-rule roots.
    fn entry_mains(&self) -> Vec<Node> {
        let mut out = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            if file.kind != FileKind::Bin {
                continue;
            }
            for (gi, item) in file.items.fns.iter().enumerate() {
                if item.name == "main" && !item.in_test {
                    out.push((fi, gi));
                }
            }
        }
        out
    }

    /// Fns that invoke the mm-exec scatter API — the F-rule roots. The
    /// closure bodies passed to scatter lex inside these fns, so a root's
    /// own hazards and everything it calls are covered.
    fn scatter_origins(&self) -> Vec<Node> {
        let mut out = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            if file.kind == FileKind::Test {
                continue;
            }
            for (gi, item) in file.items.fns.iter().enumerate() {
                if item.in_test {
                    continue;
                }
                if item
                    .calls
                    .iter()
                    .any(|c| c == "scatter_gather" || c == "scatter_gather_stats")
                {
                    out.push((fi, gi));
                }
            }
        }
        out
    }
}

/// Run the graph-phase rules over the whole workspace. `crate_deps` maps
/// crate directory names to the directory names they depend on (empty for
/// in-memory analyses, which widens call resolution to every file).
pub fn run_graph_rules(
    files: &[FileSummary],
    crate_deps: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<Diagnostic> {
    let graph = Graph::build(files, crate_deps);
    let p_reach = graph.reachable(graph.entry_mains());
    let f_reach = graph.reachable(graph.scatter_origins());

    let mut diags = Vec::new();
    let mut push = |rule: &'static str, file: &FileSummary, line: u32, message: String| {
        diags.push(Diagnostic {
            rule,
            severity: Severity::Error,
            file: file.path.clone(),
            line,
            message,
            suppressed: false,
        });
    };

    // R003 — one stream label, one stream: the same constant label at two
    // production call sites of a crate derives the *same* xoshiro stream
    // from the same master, silently correlating what should be
    // independent randomness.
    let mut labels: BTreeMap<(&str, &str), Vec<(usize, u32)>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        if file.scope != Scope::Deterministic || !matches!(file.kind, FileKind::Lib | FileKind::Bin)
        {
            continue;
        }
        for h in file.items.all_hazards() {
            if h.kind == HazardKind::StreamLabel && !h.in_test {
                labels
                    .entry((file.crate_name.as_str(), h.detail.as_str()))
                    .or_default()
                    .push((fi, h.line));
            }
        }
    }
    for ((crate_name, label), sites) in &labels {
        if sites.len() < 2 {
            continue;
        }
        for &(fi, line) in sites {
            push(
                "R003",
                &files[fi],
                line,
                format!(
                    "stream_rng label {label} appears at {} production sites in crate \
                     `{crate_name}`: identical labels derive identical streams — give every \
                     independent stream its own label (or derive with sub_seed/round_seed)",
                    sites.len()
                ),
            );
        }
    }

    // F001 — float reductions on scatter-reachable paths must live in the
    // sanctioned kernel files.
    for (fi, file) in files.iter().enumerate() {
        if file.scope != Scope::Deterministic
            || !matches!(file.kind, FileKind::Lib | FileKind::Bin)
            || KERNEL_FILES.contains(&file.path.as_str())
        {
            continue;
        }
        for (gi, item) in file.items.fns.iter().enumerate() {
            if item.in_test || !f_reach.contains(&(fi, gi)) {
                continue;
            }
            for h in &item.hazards {
                if h.kind == HazardKind::FloatReduce {
                    push(
                        "F001",
                        file,
                        h.line,
                        format!(
                            "order-sensitive f64 reduction ({}) in `{}`, reachable from an \
                             mm-exec scatter site: route it through a count-based kernel \
                             (mmcore::kernel, mmlab ValueCounts) or accumulate in integers",
                            h.detail, item.name
                        ),
                    );
                }
            }
        }
    }

    // P001/P002 — panic sites in library code reachable from a binary
    // entry point.
    for (fi, file) in files.iter().enumerate() {
        if file.kind != FileKind::Lib {
            continue;
        }
        for (gi, item) in file.items.fns.iter().enumerate() {
            if item.in_test || !p_reach.contains(&(fi, gi)) {
                continue;
            }
            for h in &item.hazards {
                match h.kind {
                    HazardKind::PanicMacro => push(
                        "P001",
                        file,
                        h.line,
                        format!(
                            "{}! in `{}` is reachable from a binary entry point: library \
                             code must return MmError or restructure so the case cannot \
                             exist (if-let, exhaustive match)",
                            h.detail, item.name
                        ),
                    ),
                    HazardKind::CastIndex => push(
                        "P002",
                        file,
                        h.line,
                        format!(
                            "as-cast index in `{}` is reachable from a binary entry point: \
                             a bad cast panics out of bounds — use .get()/.get_mut() and \
                             handle the None",
                            item.name
                        ),
                    ),
                    _ => {}
                }
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::classify;
    use crate::items;
    use crate::lexer;

    fn summary(path: &str, src: &str) -> FileSummary {
        let (crate_name, scope, kind) = classify(path);
        FileSummary {
            path: path.to_string(),
            crate_name,
            scope,
            kind,
            items: items::extract(&lexer::lex(src), &[]),
            graph_sups: Vec::new(),
        }
    }

    fn run(files: &[FileSummary]) -> Vec<Diagnostic> {
        run_graph_rules(files, &BTreeMap::new())
    }

    #[test]
    fn f001_requires_scatter_reachability() {
        let files = [
            summary(
                "crates/experiments/src/run.rs",
                "pub fn drive(exec: &Executor) {\n\
                 let out = exec.scatter_gather(items, |_, x| shard(x));\n\
                 }\n",
            ),
            summary(
                "crates/mmlab/src/calc.rs",
                "pub fn shard(x: &[f64]) -> f64 { x.iter().sum::<f64>() }\n\
                 pub fn offline(x: &[f64]) -> f64 { x.iter().sum::<f64>() }\n",
            ),
        ];
        let diags = run(&files);
        let f001: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == "F001")
            .map(|d| d.line)
            .collect();
        assert_eq!(f001, vec![1], "{diags:?}");
    }

    #[test]
    fn f001_exempts_kernel_files() {
        let files = [
            summary(
                "crates/experiments/src/run.rs",
                "pub fn drive(exec: &Executor) {\n\
                 exec.scatter_gather(items, |_, x| sum_f64(x));\n\
                 }\n",
            ),
            summary(
                "crates/core/src/kernel.rs",
                "pub fn sum_f64(x: &[f64]) -> f64 { x.iter().sum::<f64>() }\n",
            ),
        ];
        assert!(run(&files).iter().all(|d| d.rule != "F001"));
    }

    #[test]
    fn p_rules_require_entry_reachability_and_lib_kind() {
        let files = [
            summary(
                "crates/experiments/src/bin/mmx.rs",
                "fn main() { hot(); v[i as usize]; }\n",
            ),
            summary(
                "crates/netsim/src/sched.rs",
                "pub fn hot(v: &[u64], i: u32) {\n\
                 let x = v[i as usize];\n\
                 unreachable!(\"no\");\n\
                 }\n\
                 pub fn cold() { panic!(\"never called\") }\n",
            ),
        ];
        let diags = run(&files);
        let p: Vec<(&str, u32)> = diags
            .iter()
            .filter(|d| d.rule.starts_with('P'))
            .map(|d| (d.rule, d.line))
            .collect();
        // The bin's own cast index is exempt (binaries may panic); only
        // the reachable lib fn's two hazards fire.
        assert_eq!(p, vec![("P002", 2), ("P001", 3)], "{diags:?}");
    }

    #[test]
    fn r003_dedups_labels_within_a_crate_only() {
        let files = [
            summary(
                "crates/carriers/src/a.rs",
                "pub fn f(s: u64) { stream_rng(s, 7); }\npub fn g(s: u64) { stream_rng(s, 0x7); }\n",
            ),
            summary(
                "crates/netsim/src/b.rs",
                "pub fn h(s: u64) { stream_rng(s, 7); }\n",
            ),
        ];
        let diags = run(&files);
        let r003: Vec<(&str, u32)> = diags
            .iter()
            .filter(|d| d.rule == "R003")
            .map(|d| (d.file.as_str(), d.line))
            .collect();
        assert_eq!(
            r003,
            vec![
                ("crates/carriers/src/a.rs", 1),
                ("crates/carriers/src/a.rs", 2)
            ],
            "{diags:?}"
        );
    }

    #[test]
    fn crate_deps_restrict_call_resolution() {
        let files = [
            summary(
                "crates/experiments/src/bin/mmx.rs",
                "fn main() { helper(); }\n",
            ),
            summary(
                "crates/netsim/src/x.rs",
                "pub fn helper() { panic!(\"in dep\") }\n",
            ),
            summary(
                "crates/store/src/y.rs",
                "pub fn helper() { panic!(\"not a dep\") }\n",
            ),
        ];
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        deps.insert(
            "experiments".to_string(),
            ["netsim".to_string()].into_iter().collect(),
        );
        deps.insert("netsim".to_string(), BTreeSet::new());
        deps.insert("store".to_string(), BTreeSet::new());
        let diags = run_graph_rules(&files, &deps);
        let p001: Vec<&str> = diags
            .iter()
            .filter(|d| d.rule == "P001")
            .map(|d| d.file.as_str())
            .collect();
        assert_eq!(p001, vec!["crates/netsim/src/x.rs"], "{diags:?}");
    }

    #[test]
    fn test_fns_are_not_graph_roots_or_targets() {
        let files = [summary(
            "crates/netsim/src/x.rs",
            "pub fn risky() { panic!(\"x\") }\n",
        )];
        // No entry point at all: nothing reachable, nothing fires.
        assert!(run(&files).is_empty());
    }
}
