//! # mm-lint — determinism & hermeticity static analysis
//!
//! The workspace's core claim is that every table and figure of the
//! IMC'18 mobility-configuration study is byte-identical for any
//! `MM_THREADS` and any re-run. Runtime spot-checks (golden FNV hashes,
//! `MM_THREADS=1` vs `8` snapshot diffs) only cover the paths the test
//! seeds exercise; this crate enforces the invariants *statically* over
//! every `.rs` file and `Cargo.toml` in the workspace, so a stray
//! `HashMap` iteration or `Instant::now()` in a Sim-scope path cannot
//! silently break reproducibility.
//!
//! The pipeline is deliberately parser-free and runs in two phases. The
//! per-file phase: a comment/string-aware [`lexer`] turns each file into
//! a token stream, [`engine`] classifies the file (crate, determinism
//! scope, target kind) and tracks `#[cfg(test)]` regions, every
//! token-level [`rules::Rule`] is a pattern over that stream, and
//! [`items`] extracts a per-function summary (calls made, float
//! reductions, panic macros, cast subscripts, `stream_rng` labels). The
//! workspace-global phase: [`graph`] joins those summaries with the
//! crate-dependency closure from a minimal [`manifest`] reader into an
//! approximate call graph, and runs the cross-file semantic rules — RNG
//! stream discipline (R-rules), float determinism on scatter-reachable
//! paths (F001), and panic reachability from binary entry points
//! (P001/P002).
//!
//! Per-file results are cached content-addressed by FNV hash ([`cache`])
//! so warm runs re-analyze only changed files, and the file analyses are
//! scattered over the mm-exec pool with output byte-identical at any
//! `MM_THREADS`. Findings can be silenced inline with
//! `mm-allow(RULE): reason` at the start of a comment on the same line or
//! the line above — suppressed diagnostics are marked, not dropped, and
//! reasonless, unknown-rule, or stale suppressions are themselves
//! diagnostics (S001 for token rules, S002 for graph rules — an error
//! under `--strict-suppress`), so the suppression inventory stays honest.
//!
//! The `mmlint` binary runs the whole workspace (human or `--json`
//! output, `--explain RULE` for rationale, `--no-cache`/`--cache-dir`
//! for cache control) and is gated in `scripts/verify.sh` alongside
//! clippy.

#![forbid(unsafe_code)]

pub mod cache;
pub mod diag;
pub mod engine;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod manifest;
pub mod rules;

pub use diag::{Diagnostic, Report, Severity};
pub use engine::{
    analyze_files, analyze_manifest_src, analyze_source, analyze_workspace, analyze_workspace_with,
    LintOptions,
};
pub use rules::{is_known_rule, rule_by_id, RULES};
