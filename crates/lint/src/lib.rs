//! # mm-lint — determinism & hermeticity static analysis
//!
//! The workspace's core claim is that every table and figure of the
//! IMC'18 mobility-configuration study is byte-identical for any
//! `MM_THREADS` and any re-run. Runtime spot-checks (golden FNV hashes,
//! `MM_THREADS=1` vs `8` snapshot diffs) only cover the paths the test
//! seeds exercise; this crate enforces the invariants *statically* over
//! every `.rs` file and `Cargo.toml` in the workspace, so a stray
//! `HashMap` iteration or `Instant::now()` in a Sim-scope path cannot
//! silently break reproducibility.
//!
//! The pipeline is deliberately parser-free: a comment/string-aware
//! [`lexer`] turns each file into a token stream, [`engine`] classifies
//! the file (crate, determinism scope, target kind) and tracks
//! `#[cfg(test)]` regions, and every [`rules::Rule`] is a pattern over
//! that stream. A minimal [`manifest`] reader covers the hermeticity
//! rule. Findings can be silenced inline with
//! `mm-allow(RULE): reason` at the start of a comment on the same line or
//! the line above — reasonless, unknown-rule, or stale suppressions are
//! themselves errors (S001), so the suppression inventory stays honest.
//!
//! The `mmlint` binary runs the whole workspace (human or `--json`
//! output, `--explain RULE` for rationale) and is gated in
//! `scripts/verify.sh` alongside clippy.

#![forbid(unsafe_code)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod rules;

pub use diag::{Diagnostic, Report, Severity};
pub use engine::{analyze_manifest_src, analyze_source, analyze_workspace};
pub use rules::{is_known_rule, rule_by_id, RULES};
