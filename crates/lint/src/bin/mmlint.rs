//! `mmlint` — run the workspace determinism & hermeticity lints.
//!
//! ```text
//! mmlint [--root DIR] [--json] [--list] [--strict-suppress]
//!        [--cache-dir DIR | --no-cache]
//! mmlint --explain RULE
//! ```
//!
//! With no flags, lints the workspace rooted at the nearest ancestor of
//! the current directory containing a `Cargo.toml` with a `[workspace]`
//! table (or `--root DIR` explicitly), prints findings as
//! `file:line: RULE severity: message`, and exits 0 when clean, 3 when
//! diagnostics were found, 2 on usage errors — the same convention as
//! `mmx`.
//!
//! Per-file analysis results are cached under `<root>/target/mmlint-cache`
//! (override with `--cache-dir`, disable with `--no-cache`); warm runs
//! re-analyze only changed files. Cache statistics go to stderr so stdout
//! stays byte-identical whatever the cache or `MM_THREADS` says.
//! `--strict-suppress` turns the stale-suppression audit (S002) into an
//! error, for CI.

use mm_json::ToJson;
use mm_lint::{analyze_workspace_with, rule_by_id, LintOptions, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    "usage: mmlint [--root DIR] [--json] [--list] [--strict-suppress] \
     [--cache-dir DIR | --no-cache] [--explain RULE] [--version]"
        .to_string()
}

/// Find the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run() -> Result<ExitCode, (i32, String)> {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut strict_suppress = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--version" => {
                println!("mmlint {}", env!("CARGO_PKG_VERSION"));
                return Ok(ExitCode::SUCCESS);
            }
            "--json" => json = true,
            "--strict-suppress" => strict_suppress = true,
            "--no-cache" => no_cache = true,
            "--cache-dir" => {
                let dir = args
                    .next()
                    .ok_or((2, format!("--cache-dir needs a value\n{}", usage())))?;
                cache_dir = Some(PathBuf::from(dir));
            }
            "--root" => {
                let dir = args
                    .next()
                    .ok_or((2, format!("--root needs a value\n{}", usage())))?;
                root = Some(PathBuf::from(dir));
            }
            "--list" => {
                for r in RULES {
                    println!("{}  {}  {}", r.id, r.severity.label(), r.summary);
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--explain" => {
                let id = args
                    .next()
                    .ok_or((2, format!("--explain needs a rule id\n{}", usage())))?;
                let rule = rule_by_id(&id)
                    .ok_or((2, format!("unknown rule {id:?} (try `mmlint --list`)")))?;
                println!(
                    "{} ({}): {}\n\n{}",
                    rule.id,
                    rule.severity.label(),
                    rule.summary,
                    rule.explain
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err((2, format!("unknown argument {other:?}\n{}", usage()))),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| (3, format!("cwd: {e}")))?;
            find_root(cwd).ok_or((
                2,
                "no workspace root found (no ancestor Cargo.toml with [workspace]); \
                 pass --root DIR"
                    .to_string(),
            ))?
        }
    };

    if no_cache && cache_dir.is_some() {
        return Err((
            2,
            format!("--no-cache conflicts with --cache-dir\n{}", usage()),
        ));
    }
    let opts = LintOptions {
        cache_dir: if no_cache {
            None
        } else {
            Some(cache_dir.unwrap_or_else(|| root.join("target/mmlint-cache")))
        },
        strict_suppress,
    };

    let report = analyze_workspace_with(&root, &opts)
        .map_err(|e| (3, format!("scanning {}: {e}", root.display())))?;
    // Stats stay off stdout: its bytes must not depend on cache warmth.
    eprintln!(
        "mmlint: {} of {} file analyses from cache",
        report.cache_hits, report.files_scanned
    );

    if json {
        println!("{}", report.to_json_string());
    } else {
        for d in report.diagnostics.iter().filter(|d| !d.suppressed) {
            println!("{}", d.human());
        }
        if report.is_clean() {
            println!(
                "mmlint: clean — {} files + {} manifests, {} rules, {} suppressed finding(s)",
                report.files_scanned,
                report.manifests_scanned,
                RULES.len(),
                report.suppressed()
            );
        } else {
            println!(
                "mmlint: {} error(s), {} warning(s) across {} files",
                report.errors(),
                report.warnings(),
                report.files_scanned
            );
        }
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err((code, msg)) => {
            eprintln!("mmlint: {msg}");
            ExitCode::from(code as u8)
        }
    }
}
