//! Guided Type-II experimentation — the paper's feedback loop (§3.2):
//! *"We also exploit results and findings in the configuration study to run
//! Type-II experiments. For example, we run experiments around certain
//! cells or routes with configurations of interest, to assess their
//! impacts."*
//!
//! Given a predicate over crawled configurations, this module finds the
//! matching cells in a world, builds a short drive route through each, and
//! runs targeted measurements.

use crate::campaign::city_network;
use crate::dataset::{HandoffInstance, D1};
use mmcarriers::city::City;
use mmcarriers::world::{GeneratedCell, World, CITY_SIZE_M};
use mmcore::config::CellConfig;
use mmnetsim::mobility::{Mobility, CITY_SPEED_MPS};
use mmnetsim::run::{drive, DriveConfig};
use mmradio::band::Rat;
use mmradio::geom::{Point, Route};

/// Find LTE cells whose round-0 configuration matches `predicate`.
pub fn find_cells_of_interest<'w>(
    world: &'w World,
    carrier: &'w str,
    city: City,
    predicate: impl Fn(&CellConfig) -> bool,
) -> Vec<&'w GeneratedCell> {
    world
        .cells_of(carrier)
        .filter(|c| c.city == city && c.rat == Rat::Lte)
        .filter(|c| {
            world
                .observed_config(c, 0)
                .is_some_and(|cfg| predicate(&cfg))
        })
        .collect()
}

/// A straight 4 km route passing through a cell's coverage, clamped to the
/// city box.
pub fn route_through(cell_pos: Point) -> Route {
    let half = 2_000.0;
    let x0 = (cell_pos.x - half).clamp(0.0, CITY_SIZE_M);
    let x1 = (cell_pos.x + half).clamp(0.0, CITY_SIZE_M);
    Route::line(Point::new(x0, cell_pos.y), Point::new(x1, cell_pos.y))
}

/// Run guided drives through every cell of interest, collecting the handoff
/// instances whose *source* cell is one of the targets.
pub fn guided_campaign(
    world: &World,
    carrier: &'static str,
    city: City,
    predicate: impl Fn(&CellConfig) -> bool,
    seed: u64,
) -> D1 {
    let mut d1 = D1::default();
    let Some(network) = city_network(world, carrier, city, seed) else {
        return d1;
    };
    let targets = find_cells_of_interest(world, carrier, city, predicate);
    let target_ids: Vec<_> = targets.iter().map(|c| c.id).collect();
    for (i, cell) in targets.iter().enumerate() {
        let dc = DriveConfig::active_speedtest(
            Mobility::Drive {
                route: route_through(cell.pos),
                speed_mps: CITY_SPEED_MPS,
            },
            420_000,
            seed ^ (i as u64) << 16,
        );
        if let Some(result) = drive(&network, &dc) {
            for record in result.handoffs {
                if target_ids.contains(&record.from) {
                    d1.push(HandoffInstance {
                        carrier,
                        city,
                        record,
                    });
                }
            }
        }
    }
    d1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcore::events::EventKind;

    #[test]
    fn finds_cells_matching_predicate() {
        let world = World::generate(9, 0.1);
        let a5_cells = find_cells_of_interest(&world, "A", City::C3, |cfg| {
            cfg.report_configs
                .iter()
                .any(|rc| matches!(rc.event, EventKind::A5 { .. }))
        });
        let all: Vec<_> = world
            .cells_of("A")
            .filter(|c| c.city == City::C3 && c.rat == Rat::Lte)
            .collect();
        assert!(!a5_cells.is_empty());
        assert!(a5_cells.len() < all.len(), "predicate must filter");
    }

    #[test]
    fn route_through_stays_in_city() {
        let r = route_through(Point::new(100.0, 5_000.0));
        for w in r.waypoints() {
            assert!((0.0..=CITY_SIZE_M).contains(&w.x));
        }
        assert!(r.length() > 1_000.0);
    }

    #[test]
    fn guided_campaign_collects_instances_from_target_cells() {
        let world = World::generate(9, 0.08);
        let d1 = guided_campaign(
            &world,
            "A",
            City::C3,
            |cfg| {
                cfg.report_configs
                    .iter()
                    .any(|rc| matches!(rc.event, EventKind::A3 { offset_db } if offset_db >= 3.0))
            },
            5,
        );
        // Every collected instance's source is an A3(≥3 dB) cell.
        for i in d1.iter_handoffs() {
            let gc = world
                .cells_of("A")
                .find(|c| c.id == i.record.from)
                .expect("source cell exists");
            let cfg = world.observed_config(gc, 0).unwrap();
            assert!(cfg
                .report_configs
                .iter()
                .any(|rc| matches!(rc.event, EventKind::A3 { offset_db } if offset_db >= 3.0)));
        }
    }
}
