//! Type-II measurement campaigns: build drivable city networks out of the
//! generated world and run drive-test fleets to produce dataset D1.
//!
//! Campaigns fan out on [`mm_exec::Executor`] at **shard** granularity —
//! one task per (carrier, city, run-chunk) running up to
//! [`CampaignConfig::shard_runs`] drives on one shared
//! [`mmnetsim::sched::Engine`] event queue, after a first scatter that
//! builds the per-(carrier, city) networks. The executor gathers results
//! in submission order and every drive derives its own RNG stream from
//! `sub_seed`, so the parallel D1 is byte-identical to [`run_campaign`]'s
//! sequential loop for any `MM_THREADS` *and* any shard width.

use crate::dataset::{HandoffInstance, D1};
use mm_exec::{Executor, RunStats};
use mm_rng::Rng;
use mmcarriers::city::City;
use mmcarriers::world::{World, CITY_SIZE_M};
use mmcore::config::CellConfig;
use mmnetsim::mobility::{Mobility, CITY_SPEED_MPS};
use mmnetsim::network::Network;
use mmnetsim::run::{drive, DriveConfig};
use mmnetsim::sched::{record_engine_stats, Engine};
use mmradio::band::Rat;
use mmradio::cell::{CellId, Deployment, PhyCell};
use mmradio::propagation::{Environment, PropagationModel};
use mmradio::rng::{stream_rng, sub_seed};
use mmradio::signal::Dbm;
use std::collections::BTreeMap;

/// The three US cities the paper's Type-II drives covered (Chicago,
/// Indianapolis, Lafayette).
pub const DRIVE_CITIES: [City; 3] = [City::C1, City::C3, City::C5];

/// Build a drivable [`Network`] from one carrier's LTE cells in one city.
///
/// Returns `None` when the carrier has no LTE cells there. Cell configs are
/// the world's round-0 observations; loads are drawn deterministically.
pub fn city_network(world: &World, carrier: &str, city: City, seed: u64) -> Option<Network> {
    let mut cells = Vec::new();
    let mut configs: BTreeMap<CellId, CellConfig> = BTreeMap::new();
    let mut rng = stream_rng(seed, sub_seed(11, 0));
    for gc in world.cells_of(carrier) {
        if gc.city != city || gc.rat != Rat::Lte {
            continue;
        }
        let Some(cfg) = world.observed_config(gc, 0) else {
            continue;
        };
        configs.insert(gc.id, cfg);
        cells.push(PhyCell {
            id: gc.id,
            pci: (gc.id.0 % 504) as u16,
            pos: gc.pos,
            channel: gc.channel,
            tx_power_dbm: Dbm(46.0),
            load: rng.gen_range(0.15..0.6),
        });
    }
    if cells.is_empty() {
        return None;
    }
    let env = if city == City::C1 {
        Environment::DenseUrban
    } else {
        Environment::Urban
    };
    let model = PropagationModel::new(env, sub_seed(seed, 12));
    mm_telemetry::global()
        .counter("campaign", "networks_built")
        .inc();
    Some(Network::new(Deployment::new(cells, model), configs))
}

/// Parameters of a campaign: a fleet of seeded drives per (carrier, city).
///
/// Built with [`CampaignConfig::active`] / [`CampaignConfig::idle`] plus the
/// chainable setters — the paper's defaults come pre-filled.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Drives per (carrier, city) pair.
    pub runs: usize,
    /// Duration of each run, ms.
    pub duration_ms: u64,
    /// Active (connected) or idle drives.
    pub active: bool,
    /// Campaign master seed.
    pub seed: u64,
    /// Cities the fleet covers.
    pub cities: Vec<City>,
    /// Drives per parallel shard task: each shard runs up to this many
    /// UEs on one shared event queue. Purely a scheduling knob — D1 is
    /// byte-identical for every value ≥ 1.
    pub shard_runs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig::active(1)
    }
}

impl CampaignConfig {
    /// An active-state (speedtest) campaign with the paper's defaults:
    /// 8 drives per (carrier, city), 10-minute runs, the three drive cities.
    pub fn active(seed: u64) -> Self {
        CampaignConfig {
            runs: 8,
            duration_ms: 600_000,
            active: true,
            seed,
            cities: DRIVE_CITIES.to_vec(),
            shard_runs: 4,
        }
    }

    /// An idle-state campaign (same fleet shape, RRC-idle UEs).
    pub fn idle(seed: u64) -> Self {
        CampaignConfig {
            active: false,
            ..CampaignConfig::active(seed)
        }
    }

    /// Set the number of drives per (carrier, city).
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Set the per-run duration in milliseconds.
    pub fn duration_ms(mut self, duration_ms: u64) -> Self {
        self.duration_ms = duration_ms;
        self
    }

    /// Set the cities the fleet covers.
    pub fn cities(mut self, cities: &[City]) -> Self {
        self.cities = cities.to_vec();
        self
    }

    /// Set the shard width (drives per parallel engine task, min 1).
    pub fn shard_runs(mut self, shard_runs: usize) -> Self {
        self.shard_runs = shard_runs.max(1);
        self
    }

    /// Seed for one run index (shared across carriers/cities by design —
    /// the same fleet of routes is driven on every network).
    fn run_seed(&self, run: usize) -> u64 {
        sub_seed(self.seed, (run as u64) << 8 | u64::from(self.active))
    }
}

/// The [`DriveConfig`] of one campaign run (the route fleet is shared
/// across carriers/cities by design — see [`CampaignConfig::run_seed`]).
fn run_drive_config(cfg: &CampaignConfig, run: usize) -> DriveConfig {
    let run_seed = cfg.run_seed(run);
    let mobility = Mobility::random_city_drive(CITY_SIZE_M, 14, CITY_SPEED_MPS, run_seed);
    if cfg.active {
        DriveConfig::active_speedtest(mobility, cfg.duration_ms, run_seed)
    } else {
        DriveConfig::idle(mobility, cfg.duration_ms, run_seed)
    }
}

/// Tag one drive's result and bump the campaign counters.
fn tag_instances(
    result: Option<mmnetsim::DriveResult>,
    carrier: &'static str,
    city: City,
) -> Vec<HandoffInstance> {
    let instances: Vec<HandoffInstance> = match result {
        Some(result) => result
            .handoffs
            .into_iter()
            .map(|record| HandoffInstance {
                carrier,
                city,
                record,
            })
            .collect(),
        None => Vec::new(),
    };
    let reg = mm_telemetry::global();
    reg.counter("campaign", "drives_completed").inc();
    reg.counter("campaign", "handoff_instances")
        .add(instances.len() as u64);
    instances
}

/// Execute one drive of a campaign and tag its handoffs.
fn campaign_drive(
    network: &Network,
    carrier: &'static str,
    city: City,
    run: usize,
    cfg: &CampaignConfig,
) -> Vec<HandoffInstance> {
    let dc = run_drive_config(cfg, run);
    tag_instances(drive(network, &dc), carrier, city)
}

/// Execute one shard — the runs `[lo, hi)` of one (carrier, city) pair —
/// on a single shared event queue, returning per-run tagged instances in
/// run order.
fn campaign_shard(
    network: &Network,
    carrier: &'static str,
    city: City,
    runs: std::ops::Range<usize>,
    cfg: &CampaignConfig,
) -> Vec<Vec<HandoffInstance>> {
    let cfgs: Vec<DriveConfig> = runs.map(|run| run_drive_config(cfg, run)).collect();
    let outcome = Engine::new(network).run(&cfgs);
    record_engine_stats(&outcome.stats);
    outcome
        .ues
        .into_iter()
        .map(|ue| {
            let result = ue.map(|out| {
                let run = out
                    .into_full()
                    // mm-allow(E001): Engine::new collects CollectMode::Full
                    .expect("full collection mode");
                run.record_telemetry();
                run.result
            });
            tag_instances(result, carrier, city)
        })
        .collect()
}

/// Run a drive-test campaign for one carrier across the configured cities,
/// appending every handoff instance to a D1 dataset. This is the sequential
/// reference path; the parallel runners are bound to produce identical
/// output.
pub fn run_campaign(world: &World, carrier: &'static str, cfg: &CampaignConfig) -> D1 {
    let mut d1 = D1::default();
    for &city in &cfg.cities {
        let Some(network) = city_network(world, carrier, city, cfg.seed) else {
            continue;
        };
        for run in 0..cfg.runs {
            d1.append(campaign_drive(&network, carrier, city, run, cfg));
        }
    }
    d1
}

/// Run campaigns for several carriers on an explicit executor, returning
/// the merged D1 plus the pool's [`RunStats`].
///
/// Parallelism is at shard granularity: a first scatter builds each
/// (carrier, city) network, a second runs every (carrier, city, run-chunk)
/// shard — up to [`CampaignConfig::shard_runs`] drives multiplexed on one
/// event queue. Both gathers are in submission order — carrier-major, then
/// city, then run — exactly the sequential loop's append order, so the
/// result is byte-identical to chaining [`run_campaign`] per carrier for
/// any thread count and any shard width.
pub fn run_campaigns_stats(
    world: &World,
    carriers: &[&'static str],
    cfg: &CampaignConfig,
    exec: &Executor,
) -> (D1, RunStats) {
    let reg = mm_telemetry::global();
    let pairs: Vec<(&'static str, City)> = carriers
        .iter()
        .flat_map(|&carrier| cfg.cities.iter().map(move |&city| (carrier, city)))
        .collect();
    let (networks, mut stats) = {
        let _stage = reg.span("campaign", "build_networks");
        exec.scatter_gather_stats(pairs.clone(), |_, (carrier, city)| {
            city_network(world, carrier, city, cfg.seed)
        })
    };
    let width = cfg.shard_runs.max(1);
    let shards: Vec<(usize, std::ops::Range<usize>)> = (0..pairs.len())
        .filter(|&p| networks[p].is_some())
        .flat_map(|p| {
            (0..cfg.runs)
                .step_by(width)
                .map(move |lo| (p, lo..(lo + width).min(cfg.runs)))
        })
        .collect();
    let (results, shard_stats) = {
        let _stage = reg.span("campaign", "drives");
        exec.scatter_gather_stats(shards, |_, (p, runs)| {
            let network = networks[p]
                .as_ref()
                // mm-allow(E001): the shard list is filtered to indices where networks[p].is_some()
                .expect("shards scattered for built networks only");
            let (carrier, city) = pairs[p];
            campaign_shard(network, carrier, city, runs, cfg)
        })
    };
    stats.merge(&shard_stats);
    let mut d1 = D1::default();
    for shard in results {
        for instances in shard {
            d1.append(instances);
        }
    }
    (d1, stats)
}

/// [`run_campaigns_stats`] without the stats.
pub fn run_campaigns(
    world: &World,
    carriers: &[&'static str],
    cfg: &CampaignConfig,
    exec: &Executor,
) -> D1 {
    run_campaigns_stats(world, carriers, cfg, exec).0
}

/// Run campaigns for several carriers in parallel on the ambient executor
/// (`MM_THREADS` or `available_parallelism()`), merging D1 in carrier order.
pub fn run_campaigns_parallel(
    world: &World,
    carriers: &[&'static str],
    cfg: &CampaignConfig,
) -> D1 {
    run_campaigns(world, carriers, cfg, &Executor::from_env())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmnetsim::run::HandoffKind;

    fn world() -> World {
        World::generate(5, 0.05)
    }

    #[test]
    fn city_network_builds_for_us_carriers() {
        let w = world();
        let n = city_network(&w, "A", City::C1, 1).expect("AT&T has Chicago cells");
        assert!(n.len() > 10, "{}", n.len());
    }

    #[test]
    fn city_network_none_for_absent_combo() {
        let w = world();
        assert!(
            city_network(&w, "CM", City::C1, 1).is_none(),
            "China Mobile has no US cells"
        );
    }

    #[test]
    fn active_campaign_produces_active_handoffs() {
        let w = world();
        let cfg = CampaignConfig::active(3)
            .runs(2)
            .duration_ms(240_000)
            .cities(&[City::C1]);
        let d1 = run_campaign(&w, "A", &cfg);
        assert!(!d1.is_empty(), "city drive must produce handoffs");
        for i in d1.iter_handoffs() {
            assert!(matches!(i.record.kind, HandoffKind::Active { .. }));
            assert_eq!(i.carrier, "A");
            assert_eq!(i.city, City::C1);
        }
    }

    #[test]
    fn idle_campaign_produces_idle_handoffs() {
        let w = world();
        let cfg = CampaignConfig::idle(4)
            .runs(2)
            .duration_ms(240_000)
            .cities(&[City::C1]);
        let d1 = run_campaign(&w, "A", &cfg);
        assert!(!d1.is_empty());
        for i in d1.iter_handoffs() {
            assert!(matches!(i.record.kind, HandoffKind::Idle { .. }));
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let w = world();
        let cfg = CampaignConfig::active(9)
            .runs(1)
            .duration_ms(120_000)
            .cities(&[City::C3]);
        let seq = {
            let mut d = run_campaign(&w, "A", &cfg);
            d.extend(run_campaign(&w, "T", &cfg));
            d
        };
        for threads in [1, 2, 8] {
            let par = run_campaigns(&w, &["A", "T"], &cfg, &Executor::new(threads));
            assert_eq!(seq, par, "{threads} threads");
        }
        // The shard width is purely a scheduling knob: any chunking of the
        // runs over shared event queues yields the same D1.
        for width in [1, 3, 8] {
            let par = run_campaigns(
                &w,
                &["A", "T"],
                &cfg.clone().shard_runs(width),
                &Executor::new(4),
            );
            assert_eq!(seq, par, "shard width {width}");
        }
    }

    #[test]
    fn shard_granularity_stats_cover_every_task() {
        let w = world();
        let cfg = CampaignConfig::active(9)
            .runs(2)
            .duration_ms(120_000)
            .cities(&[City::C1, City::C3]);
        let (d1, stats) = run_campaigns_stats(&w, &["A", "T"], &cfg, &Executor::new(4));
        assert!(!d1.is_empty());
        // 4 network builds + 4 pairs x 1 shard (2 runs fit one width-4
        // shard) = 8 tasks.
        assert_eq!(stats.tasks(), 8);
        let executed: u64 = stats.workers.iter().map(|ws| ws.executed).sum();
        assert_eq!(executed, 8);
        // Width 1 degenerates to drive granularity: 4 + 4 pairs x 2 runs.
        let (_, stats) = run_campaigns_stats(
            &w,
            &["A", "T"],
            &cfg.clone().shard_runs(1),
            &Executor::new(4),
        );
        assert_eq!(stats.tasks(), 12);
    }

    #[test]
    fn builder_fills_paper_defaults() {
        let cfg = CampaignConfig::active(7);
        assert_eq!(cfg.runs, 8);
        assert_eq!(cfg.duration_ms, 600_000);
        assert!(cfg.active);
        assert_eq!(cfg.cities, DRIVE_CITIES.to_vec());
        assert_eq!(cfg.shard_runs, 4);
        let idle = CampaignConfig::idle(7).runs(3).shard_runs(0);
        assert!(!idle.active);
        assert_eq!(idle.runs, 3);
        assert_eq!(idle.seed, 7);
        assert_eq!(idle.shard_runs, 1, "shard width clamps to 1");
    }
}
