//! Type-II measurement campaigns: build drivable city networks out of the
//! generated world and run drive-test fleets to produce dataset D1.

use crate::dataset::{HandoffInstance, D1};
use mmcarriers::world::{World, CITY_SIZE_M};
use mmcore::config::CellConfig;
use mmnetsim::mobility::{Mobility, CITY_SPEED_MPS};
use mmnetsim::network::Network;
use mmnetsim::run::{drive, DriveConfig};
use mmnetsim::traffic::Traffic;
use mmradio::band::Rat;
use mmradio::cell::{CellId, Deployment, PhyCell};
use mmradio::propagation::{Environment, PropagationModel};
use mmradio::rng::{stream_rng, sub_seed};
use mmradio::signal::Dbm;
use mm_rng::Rng;
use std::collections::BTreeMap;

/// Build a drivable [`Network`] from one carrier's LTE cells in one city.
///
/// Returns `None` when the carrier has no LTE cells there. Cell configs are
/// the world's round-0 observations; loads are drawn deterministically.
pub fn city_network(world: &World, carrier: &str, city: &str, seed: u64) -> Option<Network> {
    let mut cells = Vec::new();
    let mut configs: BTreeMap<CellId, CellConfig> = BTreeMap::new();
    let mut rng = stream_rng(seed, sub_seed(11, 0));
    for gc in world.cells_of(carrier) {
        if gc.city != city || gc.rat != Rat::Lte {
            continue;
        }
        let cfg = world.observed_config(gc, 0).expect("LTE cell has config");
        configs.insert(gc.id, cfg);
        cells.push(PhyCell {
            id: gc.id,
            pci: (gc.id.0 % 504) as u16,
            pos: gc.pos,
            channel: gc.channel,
            tx_power_dbm: Dbm(46.0),
            load: rng.gen_range(0.15..0.6),
        });
    }
    if cells.is_empty() {
        return None;
    }
    let env = if city == "C1" { Environment::DenseUrban } else { Environment::Urban };
    let model = PropagationModel::new(env, sub_seed(seed, 12));
    Some(Network::new(Deployment::new(cells, model), configs))
}

/// Parameters of a campaign: a fleet of seeded drives per (carrier, city).
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Drives per (carrier, city) pair.
    pub runs: usize,
    /// Duration of each run, ms.
    pub duration_ms: u64,
    /// Active (connected) or idle drives.
    pub active: bool,
    /// Campaign master seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { runs: 8, duration_ms: 600_000, active: true, seed: 1 }
    }
}

/// The static city labels used by campaigns.
fn intern_city(city: &str) -> &'static str {
    match city {
        "C1" => "C1",
        "C2" => "C2",
        "C3" => "C3",
        "C4" => "C4",
        "C5" => "C5",
        _ => "??",
    }
}

/// Run a drive-test campaign for one carrier across the given cities,
/// appending every handoff instance to a D1 dataset.
pub fn run_campaign(
    world: &World,
    carrier: &'static str,
    cities: &[&str],
    cfg: &CampaignConfig,
) -> D1 {
    let mut d1 = D1::default();
    for city in cities {
        let Some(network) = city_network(world, carrier, city, cfg.seed) else {
            continue;
        };
        for run in 0..cfg.runs {
            let run_seed = sub_seed(cfg.seed, (run as u64) << 8 | u64::from(cfg.active));
            let mobility = Mobility::random_city_drive(
                CITY_SIZE_M,
                14,
                CITY_SPEED_MPS,
                run_seed,
            );
            let dc = DriveConfig {
                mobility,
                traffic: Traffic::Speedtest,
                duration_ms: cfg.duration_ms,
                epoch_ms: if cfg.active { 100 } else { 200 },
                active: cfg.active,
                seed: run_seed,
            };
            if let Some(result) = drive(&network, &dc) {
                for record in result.handoffs {
                    d1.instances.push(HandoffInstance {
                        carrier,
                        city: intern_city(city),
                        record,
                    });
                }
            }
        }
    }
    d1
}

/// Run campaigns for several carriers in parallel (one thread per carrier,
/// via `std::thread::scope`), merging the D1 results in carrier order.
pub fn run_campaigns_parallel(
    world: &World,
    carriers: &[&'static str],
    cities: &[&str],
    cfg: &CampaignConfig,
) -> D1 {
    let mut results: Vec<Option<D1>> = (0..carriers.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, carrier) in carriers.iter().enumerate() {
            handles.push((i, scope.spawn(move || run_campaign(world, carrier, cities, cfg))));
        }
        for (i, h) in handles {
            results[i] = Some(h.join().expect("campaign thread panicked"));
        }
    });
    let mut d1 = D1::default();
    for r in results.into_iter().flatten() {
        d1.extend(r);
    }
    d1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmnetsim::run::HandoffKind;

    fn world() -> World {
        World::generate(5, 0.05)
    }

    #[test]
    fn city_network_builds_for_us_carriers() {
        let w = world();
        let n = city_network(&w, "A", "C1", 1).expect("AT&T has Chicago cells");
        assert!(n.len() > 10, "{}", n.len());
    }

    #[test]
    fn city_network_none_for_absent_combo() {
        let w = world();
        assert!(city_network(&w, "CM", "C1", 1).is_none(), "China Mobile has no US cells");
    }

    #[test]
    fn active_campaign_produces_active_handoffs() {
        let w = world();
        let cfg = CampaignConfig { runs: 2, duration_ms: 240_000, active: true, seed: 3 };
        let d1 = run_campaign(&w, "A", &["C1"], &cfg);
        assert!(!d1.is_empty(), "city drive must produce handoffs");
        for i in &d1.instances {
            assert!(matches!(i.record.kind, HandoffKind::Active { .. }));
            assert_eq!(i.carrier, "A");
            assert_eq!(i.city, "C1");
        }
    }

    #[test]
    fn idle_campaign_produces_idle_handoffs() {
        let w = world();
        let cfg = CampaignConfig { runs: 2, duration_ms: 240_000, active: false, seed: 4 };
        let d1 = run_campaign(&w, "A", &["C1"], &cfg);
        assert!(!d1.is_empty());
        for i in &d1.instances {
            assert!(matches!(i.record.kind, HandoffKind::Idle { .. }));
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let w = world();
        let cfg = CampaignConfig { runs: 1, duration_ms: 120_000, active: true, seed: 9 };
        let seq = {
            let mut d = run_campaign(&w, "A", &["C3"], &cfg);
            d.extend(run_campaign(&w, "T", &["C3"], &cfg));
            d
        };
        let par = run_campaigns_parallel(&w, &["A", "T"], &["C3"], &cfg);
        assert_eq!(seq, par);
    }
}
