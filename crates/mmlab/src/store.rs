//! Binary columnar persistence of D1/D2 (DESIGN.md §9).
//!
//! This module owns the dataset *schemas* on top of the `mm-store` codec:
//! which columns a [`ConfigSample`] or [`HandoffInstance`] decomposes into,
//! and how interned vocabulary strings (carrier codes, parameter names,
//! city codes) come back as the `&'static str` values the rest of the
//! workspace expects. The byte-level framing (magic, version, CRC) is
//! `mm-store`'s job.
//!
//! A file is one dictionary block followed by row-group blocks of
//! [`BLOCK_ROWS`] rows each; [`D2StoreReader`]/[`D1StoreReader`] stream
//! rows block by block, never holding more than one group in memory.
//!
//! Format v2 row groups carry a small prefix before the columns: the
//! declared column count (checked against the schema *before* any column
//! is decoded, so a mismatched file fails fast with a typed error) and
//! per-group vocabulary stats — the sorted dictionary ids of the carriers,
//! cities, parameters (D2 also RAT tags) present in the group. A reader
//! configured [`with_predicate`](D2StoreReader::with_predicate) consults
//! the stats to *skip whole groups* whose vocabulary cannot satisfy the
//! predicate, without touching their column bytes — predicate pushdown.

use crate::dataset::{ConfigSample, HandoffInstance, D1, D2};
use crate::predicate::Predicate;
use mm_store::{
    write_varint, Cursor, Dict, DictBuilder, F64Decoder, F64Encoder, StoreReader, StoreWriter,
    UIntDecoder, UIntEncoder,
};
use mmcore::config::Quantity;
use mmcore::events::{EventKind, ReportConfig};
use mmcore::reselect::PriorityRelation;
use mmcore::{MmError, StoreError};
use mmnetsim::run::{HandoffKind, HandoffRecord};
use mmradio::band::{ChannelNumber, Rat};
use mmradio::cell::CellId;
use mmradio::geom::Point;
use std::collections::BTreeSet;
use std::io::{Read, Write};

/// Dataset kind stamped in D2 store headers (same id the JSONL export uses).
pub const KIND_D2: &str = "d2-config-samples";
/// Dataset kind stamped in D1 store headers.
pub const KIND_D1: &str = "d1-handoff-instances";

/// Block tag: the string dictionary table.
const TAG_DICT: u8 = 1;
/// Block tag: a row group.
const TAG_ROWS: u8 = 2;

/// Rows per row-group block. Small enough that a streaming reader's
/// working set stays bounded, large enough that per-block overhead (frame,
/// column length prefixes) is noise.
pub const BLOCK_ROWS: usize = 4096;

// ---------------------------------------------------------------------------
// Enum tags (stable wire values — append-only; never renumber)
// ---------------------------------------------------------------------------

fn rat_tag(rat: Rat) -> u64 {
    match rat {
        Rat::Lte => 0,
        Rat::Umts => 1,
        Rat::Gsm => 2,
        Rat::Evdo => 3,
        Rat::Cdma1x => 4,
    }
}

fn rat_from(tag: u64) -> Result<Rat, StoreError> {
    Ok(match tag {
        0 => Rat::Lte,
        1 => Rat::Umts,
        2 => Rat::Gsm,
        3 => Rat::Evdo,
        4 => Rat::Cdma1x,
        t => return Err(StoreError::Schema(format!("unknown RAT tag {t}"))),
    })
}

fn quantity_tag(q: Quantity) -> u64 {
    match q {
        Quantity::Rsrp => 0,
        Quantity::Rsrq => 1,
    }
}

fn quantity_from(tag: u64) -> Result<Quantity, StoreError> {
    Ok(match tag {
        0 => Quantity::Rsrp,
        1 => Quantity::Rsrq,
        t => return Err(StoreError::Schema(format!("unknown quantity tag {t}"))),
    })
}

fn relation_tag(r: PriorityRelation) -> u64 {
    match r {
        PriorityRelation::IntraFreq => 0,
        PriorityRelation::NonIntraHigher => 1,
        PriorityRelation::NonIntraEqual => 2,
        PriorityRelation::NonIntraLower => 3,
    }
}

fn relation_from(tag: u64) -> Result<PriorityRelation, StoreError> {
    Ok(match tag {
        0 => PriorityRelation::IntraFreq,
        1 => PriorityRelation::NonIntraHigher,
        2 => PriorityRelation::NonIntraEqual,
        3 => PriorityRelation::NonIntraLower,
        t => return Err(StoreError::Schema(format!("unknown relation tag {t}"))),
    })
}

/// Split an [`EventKind`] into its tag and parameter list.
fn event_parts(e: &EventKind) -> (u64, [Option<f64>; 2]) {
    // The wire tag is the typed decisive-event code (mmcore::DecisiveEvent),
    // so the store registry and the figure labels share one source of truth.
    let tag = e.decisive().code();
    let params = match *e {
        EventKind::A1 { threshold }
        | EventKind::A2 { threshold }
        | EventKind::A4 { threshold }
        | EventKind::B1 { threshold } => [Some(threshold), None],
        EventKind::A3 { offset_db } | EventKind::A6 { offset_db } => [Some(offset_db), None],
        EventKind::A5 {
            threshold1,
            threshold2,
        }
        | EventKind::B2 {
            threshold1,
            threshold2,
        } => [Some(threshold1), Some(threshold2)],
        EventKind::Periodic => [None, None],
    };
    (tag, params)
}

fn event_from(tag: u64, params: &mut F64Decoder<'_>) -> Result<EventKind, StoreError> {
    Ok(match tag {
        0 => EventKind::A1 {
            threshold: params.read()?,
        },
        1 => EventKind::A2 {
            threshold: params.read()?,
        },
        2 => EventKind::A3 {
            offset_db: params.read()?,
        },
        3 => EventKind::A4 {
            threshold: params.read()?,
        },
        4 => EventKind::A5 {
            threshold1: params.read()?,
            threshold2: params.read()?,
        },
        5 => EventKind::A6 {
            offset_db: params.read()?,
        },
        6 => EventKind::B1 {
            threshold: params.read()?,
        },
        7 => EventKind::B2 {
            threshold1: params.read()?,
            threshold2: params.read()?,
        },
        8 => EventKind::Periodic,
        t => return Err(StoreError::Schema(format!("unknown event tag {t}"))),
    })
}

fn push_event(e: &EventKind, tags: &mut UIntEncoder, params: &mut F64Encoder) {
    let (tag, ps) = event_parts(e);
    tags.push(tag);
    for p in ps.into_iter().flatten() {
        params.push(p);
    }
}

// ---------------------------------------------------------------------------
// Vocabulary interning
// ---------------------------------------------------------------------------

/// Re-intern a carrier code into the `&'static str` the carrier profiles
/// own — dataset rows carry `&'static str`, so a decoded string must map
/// back into the fixed vocabulary.
fn intern_carrier(code: &str) -> Option<&'static str> {
    mmcarriers::builtin::by_code(code).map(|p| p.code)
}

/// Parameter names the LTE crawler emits as string literals rather than
/// through the core params tables (derived/pseudo-parameters of
/// `crawler::extract_samples`). Reader-side interning falls back to this
/// vocabulary after the per-RAT tables.
const CRAWLER_PARAMS: &[&str] = &[
    "cellReselectionPriority",
    "q-Hyst",
    "q-RxLevMin",
    "s-IntraSearchP",
    "s-NonIntraSearchP",
    "threshServingLowP",
    "t-ReselectionEUTRA",
    "interFreqCellReselectionPriority",
    "threshX-High",
    "threshX-Low",
    "a3-Offset",
    "hysteresis",
    "a5-Threshold1",
    "a5-Threshold2",
    "a5-TriggerQuantity",
    "a2-Threshold",
    "timeToTrigger",
    "reportInterval",
    "reportAmount",
    "q-QualMin",
    "q-OffsetCell",
    "interFreq-q-RxLevMin",
    "interFreq-q-OffsetFreq",
    "t-ReselectionInterFreq",
    "allowedMeasBandwidth",
    "utra-CellReselectionPriority",
    "utra-threshX-High",
    "utra-threshX-Low",
    "utra-q-RxLevMin",
    "t-ReselectionUTRA",
    "geran-CellReselectionPriority",
    "geran-threshX-High",
    "geran-threshX-Low",
    "geran-q-RxLevMin",
    "t-ReselectionGERAN",
    "hrpd-CellReselectionPriority",
    "threshX-HighHRPD",
    "threshX-LowHRPD",
    "1xrtt-CellReselectionPriority",
    "threshX-High1XRTT",
    "threshX-Low1XRTT",
    "t-ReselectionCDMA2000",
];

/// Re-intern a parameter name (any RAT's table — SIB5/6/7/8 rows can
/// reference neighbour-layer parameters — then the crawler's literal
/// vocabulary). `&'static str` comparisons downstream are by value, so any
/// static string with the right content is the right answer.
fn intern_param(name: &str) -> Option<&'static str> {
    for r in Rat::ALL {
        if let Some(spec) = mmcore::params::lookup(r, name) {
            return Some(spec.name);
        }
    }
    CRAWLER_PARAMS.iter().find(|&&s| s == name).copied()
}

/// A decoded dictionary with its entries pre-resolved against the static
/// vocabularies, once per file — carrier lookups rebuild every profile, so
/// doing them per row would dominate decode time. An entry that resolves
/// to nothing only becomes an error when a row actually references it in
/// that role.
struct ResolvedDict {
    dict: Dict,
    carriers: Vec<Option<&'static str>>,
    params: Vec<Option<&'static str>>,
}

impl ResolvedDict {
    fn new(dict: Dict) -> ResolvedDict {
        let entries = 0..dict.len() as u64;
        let carriers = entries
            .clone()
            .map(|i| dict.get(i).ok().and_then(intern_carrier))
            .collect();
        let params = entries
            .map(|i| dict.get(i).ok().and_then(intern_param))
            .collect();
        ResolvedDict {
            dict,
            carriers,
            params,
        }
    }

    fn carrier(&self, id: u64) -> Result<&'static str, StoreError> {
        let s = self.dict.get(id)?;
        self.carriers
            .get(id as usize)
            .copied()
            .flatten()
            .ok_or_else(|| StoreError::Schema(format!("unknown carrier code {s:?}")))
    }

    fn city(&self, id: u64) -> Result<mmcarriers::city::City, StoreError> {
        Ok(mmcarriers::city::City::intern(self.dict.get(id)?))
    }

    fn param(&self, id: u64) -> Result<&'static str, StoreError> {
        let s = self.dict.get(id)?;
        self.params
            .get(id as usize)
            .copied()
            .flatten()
            .ok_or_else(|| StoreError::Schema(format!("unknown parameter name {s:?}")))
    }

    /// The dictionary id of `s`, if this file's vocabulary contains it.
    /// Dictionaries are small (a few hundred entries), so a linear probe
    /// once per file is noise next to block decode.
    fn find(&self, s: &str) -> Option<u64> {
        (0..self.dict.len() as u64).find(|&i| self.dict.get(i).is_ok_and(|e| e == s))
    }
}

// ---------------------------------------------------------------------------
// Row-group plumbing (format v2: prefix + stats + columns)
// ---------------------------------------------------------------------------

/// Serialize a v2 row group: row count, column count, the per-group
/// vocabulary stat lists (each a sorted run of varint ids), then the
/// `len`-prefixed column byte strings.
fn encode_group(n_rows: u64, stats: &[Vec<u64>], cols: Vec<Vec<u8>>) -> Vec<u8> {
    let mut stats_buf = Vec::new();
    for list in stats {
        write_varint(&mut stats_buf, list.len() as u64);
        for &id in list {
            write_varint(&mut stats_buf, id);
        }
    }
    let mut payload = Vec::new();
    write_varint(&mut payload, n_rows);
    write_varint(&mut payload, cols.len() as u64);
    write_varint(&mut payload, stats_buf.len() as u64);
    payload.extend_from_slice(&stats_buf);
    for col in cols {
        write_varint(&mut payload, col.len() as u64);
        payload.extend_from_slice(&col);
    }
    payload
}

/// The decoded v2 group prefix: what a reader learns about a row group
/// *before* committing to decode its columns.
struct GroupPrefix<'a> {
    n_rows: u64,
    /// Sorted dictionary-id (or enum-tag) lists, one per stat dimension.
    stats: Vec<Vec<u64>>,
    /// Cursor positioned at the first column length.
    cols: Cursor<'a>,
}

/// Parse a v2 group prefix. The declared column count is checked against
/// the schema here — before any column byte is touched — so a file written
/// under a different schema fails fast with a typed error instead of
/// misdecoding columns.
fn decode_group_prefix<'a>(
    payload: &'a [u8],
    expect_cols: usize,
    n_stats: usize,
) -> Result<GroupPrefix<'a>, MmError> {
    let mut c = Cursor::new(payload);
    let n_rows = c.read_varint().map_err(MmError::Store)?;
    let n_cols = c.read_varint().map_err(MmError::Store)?;
    if n_cols != expect_cols as u64 {
        return Err(StoreError::Schema(format!(
            "row group declares {n_cols} columns, schema expects {expect_cols}"
        ))
        .into());
    }
    let stats_len = c.read_varint().map_err(MmError::Store)?;
    let stats_raw = c.read_bytes(stats_len as usize).map_err(MmError::Store)?;
    let mut sc = Cursor::new(stats_raw);
    let mut stats = Vec::with_capacity(n_stats);
    for _ in 0..n_stats {
        let n = sc.read_varint().map_err(MmError::Store)?;
        if n > stats_len {
            return Err(StoreError::Schema(format!(
                "group stats list declares {n} ids in a {stats_len}-byte prefix"
            ))
            .into());
        }
        let mut list = Vec::with_capacity(n as usize);
        for _ in 0..n {
            list.push(sc.read_varint().map_err(MmError::Store)?);
        }
        stats.push(list);
    }
    if !sc.is_empty() {
        return Err(StoreError::Schema("trailing bytes after group stats".to_string()).into());
    }
    Ok(GroupPrefix {
        n_rows,
        stats,
        cols: c,
    })
}

/// Read the column byte strings after a decoded prefix.
fn read_columns<'a>(c: &mut Cursor<'a>, expect: usize) -> Result<Vec<&'a [u8]>, MmError> {
    let mut cols = Vec::with_capacity(expect);
    for _ in 0..expect {
        let len = c.read_varint().map_err(MmError::Store)?;
        cols.push(c.read_bytes(len as usize).map_err(MmError::Store)?);
    }
    if !c.is_empty() {
        return Err(StoreError::Schema("trailing bytes after columns".to_string()).into());
    }
    Ok(cols)
}

// ---------------------------------------------------------------------------
// Predicate pushdown
// ---------------------------------------------------------------------------

/// Per-scan accounting of what a pushdown reader did: how many row groups
/// it decoded, how many it skipped on their stats alone, and how many rows
/// those skipped groups held. Trailer accounting covers both paths —
/// `declared == decoded + rows_skipped` — so a skip can never silently eat
/// data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Row groups whose columns were decoded.
    pub groups_decoded: u64,
    /// Row groups skipped via their vocabulary stats, columns untouched.
    pub groups_skipped: u64,
    /// Rows contained in the skipped groups.
    pub rows_skipped: u64,
}

/// One resolved predicate dimension against a file's dictionary.
#[derive(Debug, Clone, Copy)]
enum IdSel {
    /// Unconstrained: every group admits.
    Any,
    /// Constrained to a value the file's vocabulary does not contain:
    /// no group can admit.
    Absent,
    /// Constrained to this dictionary id / enum tag.
    One(u64),
}

impl IdSel {
    fn admits(self, sorted_ids: &[u64]) -> bool {
        match self {
            IdSel::Any => true,
            IdSel::Absent => false,
            IdSel::One(id) => sorted_ids.binary_search(&id).is_ok(),
        }
    }
}

/// A predicate resolved into per-stat-dimension id selectors, aligned with
/// the group stats lists.
struct GroupFilter {
    sels: Vec<IdSel>,
}

impl GroupFilter {
    fn admits(&self, stats: &[Vec<u64>]) -> bool {
        self.sels
            .iter()
            .zip(stats)
            .all(|(sel, ids)| sel.admits(ids))
    }
}

fn sel_str(want: Option<&str>, dict: &ResolvedDict) -> IdSel {
    match want {
        None => IdSel::Any,
        Some(s) => dict.find(s).map_or(IdSel::Absent, IdSel::One),
    }
}

/// Whether a predicate constrains any dimension the group stats cover
/// (rounds are not in the stats — they are pruned at the campaign-manifest
/// level, not per group).
fn constrains_stats(pred: &Predicate) -> bool {
    pred.carrier.is_some() || pred.city.is_some() || pred.param.is_some() || pred.rat.is_some()
}

/// Reject pre-v2 files whose row groups lack the column count and stats
/// prefix — decoding them under the v2 layout would misparse columns; a
/// clear schema error up front beats a garbled one mid-file.
fn check_group_version<R: Read>(inner: &StoreReader<R>) -> Result<(), MmError> {
    if inner.version() < 2 {
        return Err(StoreError::Schema(format!(
            "store format v{} predates per-group column stats; re-crawl to refresh the store",
            inner.version()
        ))
        .into());
    }
    Ok(())
}

/// Publish one finished scan's group accounting to the `store` telemetry
/// section (mirrors the blocks_read/bytes_read counters a layer down).
fn publish_scan_stats(dataset: &str, stats: ScanStats) {
    let t = mm_telemetry::global();
    t.counter_scoped(
        "store",
        &format!("{dataset}_groups_decoded"),
        mm_telemetry::Scope::Sim,
    )
    .add(stats.groups_decoded);
    t.counter_scoped(
        "store",
        &format!("{dataset}_groups_skipped"),
        mm_telemetry::Scope::Sim,
    )
    .add(stats.groups_skipped);
}

// ---------------------------------------------------------------------------
// D2
// ---------------------------------------------------------------------------

/// Number of columns in a D2 row group.
const D2_COLS: usize = 11;
/// D2 group stat dimensions: carriers, cities, parameters, RAT tags.
const D2_STATS: usize = 4;

/// Resolve a predicate into D2 group-stat selectors (aligned with the
/// [`D2_STATS`] list order of `d2_group_payload`).
fn d2_filter(pred: &Predicate, dict: &ResolvedDict) -> GroupFilter {
    GroupFilter {
        sels: vec![
            sel_str(pred.carrier.as_deref(), dict),
            sel_str(pred.city.map(mmcarriers::city::City::as_str), dict),
            sel_str(pred.param.as_deref(), dict),
            pred.rat.map_or(IdSel::Any, |r| IdSel::One(rat_tag(r))),
        ],
    }
}

fn d2_group_payload(dict: &mut DictBuilder, rows: &[ConfigSample]) -> Vec<u8> {
    let mut cell = UIntEncoder::new();
    let mut carrier = UIntEncoder::new();
    let mut city = UIntEncoder::new();
    let mut rat = UIntEncoder::new();
    let mut chan_rat = UIntEncoder::new();
    let mut chan_num = UIntEncoder::new();
    let mut pos_x = F64Encoder::new();
    let mut pos_y = F64Encoder::new();
    let mut round = UIntEncoder::new();
    let mut param = UIntEncoder::new();
    let mut value = F64Encoder::new();
    let mut st_carrier = BTreeSet::new();
    let mut st_city = BTreeSet::new();
    let mut st_param = BTreeSet::new();
    let mut st_rat = BTreeSet::new();
    for s in rows {
        cell.push(u64::from(s.cell.0));
        let carrier_id = dict.intern(s.carrier);
        carrier.push(carrier_id);
        st_carrier.insert(carrier_id);
        let city_id = dict.intern(s.city.as_str());
        city.push(city_id);
        st_city.insert(city_id);
        let rat_v = rat_tag(s.rat);
        rat.push(rat_v);
        st_rat.insert(rat_v);
        chan_rat.push(rat_tag(s.channel.rat));
        chan_num.push(u64::from(s.channel.number));
        pos_x.push(s.pos.x);
        pos_y.push(s.pos.y);
        round.push(u64::from(s.round));
        let param_id = dict.intern(s.param);
        param.push(param_id);
        st_param.insert(param_id);
        value.push(s.value);
    }
    let stats: Vec<Vec<u64>> = [st_carrier, st_city, st_param, st_rat]
        .into_iter()
        .map(|set| set.into_iter().collect())
        .collect();
    encode_group(
        rows.len() as u64,
        &stats,
        vec![
            cell.finish(),
            carrier.finish(),
            city.finish(),
            rat.finish(),
            chan_rat.finish(),
            chan_num.finish(),
            pos_x.finish(),
            pos_y.finish(),
            round.finish(),
            param.finish(),
            value.finish(),
        ],
    )
}

fn d2_decode_group(
    dict: &ResolvedDict,
    prefix: GroupPrefix<'_>,
) -> Result<Vec<ConfigSample>, MmError> {
    let GroupPrefix {
        n_rows, mut cols, ..
    } = prefix;
    let cols = read_columns(&mut cols, D2_COLS)?;
    let mut cell = UIntDecoder::new(cols[0]);
    let mut carrier = UIntDecoder::new(cols[1]);
    let mut city = UIntDecoder::new(cols[2]);
    let mut rat = UIntDecoder::new(cols[3]);
    let mut chan_rat = UIntDecoder::new(cols[4]);
    let mut chan_num = UIntDecoder::new(cols[5]);
    let mut pos_x = F64Decoder::new(cols[6]);
    let mut pos_y = F64Decoder::new(cols[7]);
    let mut round = UIntDecoder::new(cols[8]);
    let mut param = UIntDecoder::new(cols[9]);
    let mut value = F64Decoder::new(cols[10]);
    let mut out = Vec::with_capacity(n_rows as usize);
    for _ in 0..n_rows {
        let rat_v = rat_from(rat.read()?)?;
        let carrier_v = dict.carrier(carrier.read()?)?;
        let city_v = dict.city(city.read()?)?;
        let param_v = dict.param(param.read()?)?;
        let s = ConfigSample {
            cell: CellId(cell.read_u32()?),
            carrier: carrier_v,
            city: city_v,
            rat: rat_v,
            channel: ChannelNumber {
                rat: rat_from(chan_rat.read()?)?,
                number: chan_num.read_u32()?,
            },
            pos: Point::new(pos_x.read()?, pos_y.read()?),
            round: round.read_u32()?,
            param: param_v,
            value: value.read()?,
        };
        // A decoded value outside the ingest contract is a malformed file,
        // not a usage error: surface it as a schema failure.
        s.check().map_err(|e| StoreError::Schema(e.to_string()))?;
        out.push(s);
    }
    Ok(out)
}

impl D2 {
    /// Write the dataset in the binary columnar store format with the
    /// default row-group size.
    pub fn write_store<W: Write>(&self, w: W) -> Result<(), MmError> {
        self.write_store_with(w, BLOCK_ROWS)
    }

    /// Write with an explicit row-group size (tests use small groups to
    /// exercise multi-block streaming).
    pub fn write_store_with<W: Write>(&self, w: W, block_rows: usize) -> Result<(), MmError> {
        let block_rows = block_rows.max(1);
        // Enforce the ingest contract at the write boundary too, so a file
        // can never be produced that the reader would reject.
        for s in self.iter() {
            s.check()?;
        }
        let samples: Vec<&ConfigSample> = self.iter().collect();
        // The dictionary block must precede the row groups it describes, so
        // intern every string first.
        let mut dict = DictBuilder::new();
        let mut groups = Vec::new();
        for chunk in samples.chunks(block_rows) {
            let rows: Vec<ConfigSample> = chunk.iter().map(|&s| s.clone()).collect();
            groups.push(d2_group_payload(&mut dict, &rows));
        }
        let mut writer = StoreWriter::new(w, KIND_D2)?;
        writer.write_block(TAG_DICT, &dict.encode())?;
        for g in &groups {
            writer.write_block(TAG_ROWS, g)?;
        }
        writer.finish(samples.len() as u64)
    }

    /// Read a dataset written by [`write_store`](D2::write_store),
    /// streaming block by block.
    pub fn read_store<R: Read>(r: R) -> Result<D2, MmError> {
        let mut samples = Vec::new();
        for row in D2StoreReader::new(r)? {
            samples.push(row?);
        }
        Ok(D2::from_samples(samples))
    }
}

/// Streaming D2 reader: yields one [`ConfigSample`] at a time, decoding one
/// row group per block — the whole dataset is never materialized here.
///
/// Configure before iterating:
/// [`with_predicate`](Self::with_predicate) skips whole row groups via
/// their vocabulary stats and row-filters the rest;
/// [`scan_with_predicate`](Self::scan_with_predicate) row-filters only
/// (the full-scan baseline); [`with_round_offset`](Self::with_round_offset)
/// shifts decoded rounds for appended campaign rounds.
pub struct D2StoreReader<R: Read> {
    inner: StoreReader<R>,
    dict: Option<ResolvedDict>,
    buf: std::vec::IntoIter<ConfigSample>,
    decoded: u64,
    done: bool,
    pred: Predicate,
    pushdown: bool,
    filter: Option<GroupFilter>,
    round_offset: u32,
    stats: ScanStats,
}

impl<R: Read> D2StoreReader<R> {
    /// Open a store stream and validate its header.
    pub fn new(r: R) -> Result<Self, MmError> {
        let inner = StoreReader::new(r)?;
        if inner.kind() != KIND_D2 {
            return Err(StoreError::Schema(format!(
                "expected kind {KIND_D2:?}, found {:?}",
                inner.kind()
            ))
            .into());
        }
        check_group_version(&inner)?;
        Ok(D2StoreReader {
            inner,
            dict: None,
            buf: Vec::new().into_iter(),
            decoded: 0,
            done: false,
            pred: Predicate::any(),
            pushdown: false,
            filter: None,
            round_offset: 0,
            stats: ScanStats::default(),
        })
    }

    /// Yield only rows matching `pred`, skipping whole row groups whose
    /// vocabulary stats rule the predicate out — their column bytes are
    /// never decoded, and (like any column store that prunes on page
    /// stats) their checksums are not verified either; only groups that
    /// contribute rows pay the CRC pass. Call before iterating.
    pub fn with_predicate(mut self, pred: &Predicate) -> Self {
        self.pred = pred.clone();
        self.pushdown = true;
        self
    }

    /// Yield only rows matching `pred`, decoding *every* group (no block
    /// skipping) — the full-scan baseline pushdown is measured against.
    pub fn scan_with_predicate(mut self, pred: &Predicate) -> Self {
        self.pred = pred.clone();
        self.pushdown = false;
        self
    }

    /// Shift every decoded row's round by `rounds` — how appended campaign
    /// rounds (stored with local rounds starting at 0) surface under the
    /// global round index.
    pub fn with_round_offset(mut self, rounds: u32) -> Self {
        self.round_offset = rounds;
        self
    }

    /// What this scan decoded vs skipped so far (complete once iteration
    /// has finished).
    pub fn scan_stats(&self) -> ScanStats {
        self.stats
    }

    fn refill(&mut self) -> Result<bool, MmError> {
        loop {
            // With a pushdown filter armed, each row group's stats prefix
            // is consulted before the checksum pass: a rejected group's
            // column bytes and CRC are never touched. A prefix that fails
            // to parse is admitted so the verified path below reports the
            // real (typed) error.
            let Self {
                inner,
                filter,
                stats,
                ..
            } = self;
            let next = if let Some(f) = filter.as_ref() {
                inner.next_block_if(&mut |tag, payload| {
                    if tag != TAG_ROWS {
                        return true;
                    }
                    let Ok(prefix) = decode_group_prefix(payload, D2_COLS, D2_STATS) else {
                        return true;
                    };
                    if f.admits(&prefix.stats) {
                        return true;
                    }
                    stats.groups_skipped += 1;
                    stats.rows_skipped += prefix.n_rows;
                    false
                })?
            } else {
                inner.next_block()?
            };
            let Some(block) = next else {
                let declared = self.inner.records().unwrap_or(0);
                let seen = self.decoded + self.stats.rows_skipped;
                if declared != seen {
                    return Err(StoreError::Schema(format!(
                        "trailer declares {declared} rows, saw {seen}"
                    ))
                    .into());
                }
                publish_scan_stats("d2", self.stats);
                return Ok(false);
            };
            match block.tag {
                TAG_DICT => {
                    let dict =
                        ResolvedDict::new(Dict::decode(&block.payload).map_err(MmError::Store)?);
                    if self.pushdown && constrains_stats(&self.pred) {
                        self.filter = Some(d2_filter(&self.pred, &dict));
                    }
                    self.dict = Some(dict);
                }
                TAG_ROWS => {
                    let dict = self.dict.as_ref().ok_or_else(|| {
                        StoreError::Schema("row group before dictionary".to_string())
                    })?;
                    let prefix = decode_group_prefix(&block.payload, D2_COLS, D2_STATS)?;
                    if let Some(f) = &self.filter {
                        if !f.admits(&prefix.stats) {
                            self.stats.groups_skipped += 1;
                            self.stats.rows_skipped += prefix.n_rows;
                            continue;
                        }
                    }
                    let mut rows = d2_decode_group(dict, prefix)?;
                    self.stats.groups_decoded += 1;
                    self.decoded += rows.len() as u64;
                    if self.round_offset != 0 {
                        for s in &mut rows {
                            s.round += self.round_offset;
                        }
                    }
                    if !self.pred.is_any() {
                        let pred = &self.pred;
                        rows.retain(|s| pred.matches(s));
                    }
                    self.buf = rows.into_iter();
                    return Ok(true);
                }
                t => {
                    return Err(StoreError::Schema(format!("unknown block tag {t}")).into());
                }
            }
        }
    }
}

impl<R: Read> Iterator for D2StoreReader<R> {
    type Item = Result<ConfigSample, MmError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if let Some(row) = self.buf.next() {
                return Some(Ok(row));
            }
            match self.refill() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// D1
// ---------------------------------------------------------------------------

/// Number of columns in a D1 row group.
const D1_COLS: usize = 26;
/// D1 group stat dimensions: carriers, cities (handoff instances carry no
/// parameter or RAT field).
const D1_STATS: usize = 2;

/// Resolve a predicate into D1 group-stat selectors. Parameter/RAT
/// constraints have no D1 column to match against, so (as in
/// [`Predicate::matches_d1`]) they do not constrain the scan.
fn d1_filter(pred: &Predicate, dict: &ResolvedDict) -> GroupFilter {
    GroupFilter {
        sels: vec![
            sel_str(pred.carrier.as_deref(), dict),
            sel_str(pred.city.map(mmcarriers::city::City::as_str), dict),
        ],
    }
}

fn d1_group_payload(dict: &mut DictBuilder, rows: &[HandoffInstance]) -> Vec<u8> {
    let mut carrier = UIntEncoder::new();
    let mut city = UIntEncoder::new();
    let mut t_ms = UIntEncoder::new();
    let mut from = UIntEncoder::new();
    let mut to = UIntEncoder::new();
    let mut kind = UIntEncoder::new();
    let mut idle_rel = UIntEncoder::new();
    let mut evt_tag = UIntEncoder::new();
    let mut evt_params = F64Encoder::new();
    let mut quantity = UIntEncoder::new();
    let mut has_rc = UIntEncoder::new();
    let mut rc_evt_tag = UIntEncoder::new();
    let mut rc_evt_params = F64Encoder::new();
    let mut rc_quantity = UIntEncoder::new();
    let mut rc_hyst = F64Encoder::new();
    let mut rc_ttt = UIntEncoder::new();
    let mut rc_interval = UIntEncoder::new();
    let mut rc_amount = UIntEncoder::new();
    let mut report_t = UIntEncoder::new();
    let mut cmd_delay = UIntEncoder::new();
    let mut rsrp_old = F64Encoder::new();
    let mut rsrp_new = F64Encoder::new();
    let mut rsrq_old = F64Encoder::new();
    let mut rsrq_new = F64Encoder::new();
    let mut has_thpt = UIntEncoder::new();
    let mut thpt = F64Encoder::new();
    let mut st_carrier = BTreeSet::new();
    let mut st_city = BTreeSet::new();
    for i in rows {
        let r = &i.record;
        let carrier_id = dict.intern(i.carrier);
        carrier.push(carrier_id);
        st_carrier.insert(carrier_id);
        let city_id = dict.intern(i.city.as_str());
        city.push(city_id);
        st_city.insert(city_id);
        t_ms.push(r.t_ms);
        from.push(u64::from(r.from.0));
        to.push(u64::from(r.to.0));
        match &r.kind {
            HandoffKind::Idle { relation } => {
                kind.push(0);
                idle_rel.push(relation_tag(*relation));
            }
            HandoffKind::Active {
                decisive,
                quantity: q,
                report_config,
                report_t_ms,
                command_delay_ms,
            } => {
                kind.push(1);
                push_event(decisive, &mut evt_tag, &mut evt_params);
                quantity.push(quantity_tag(*q));
                match report_config {
                    None => has_rc.push(0),
                    Some(rc) => {
                        has_rc.push(1);
                        push_event(&rc.event, &mut rc_evt_tag, &mut rc_evt_params);
                        rc_quantity.push(quantity_tag(rc.quantity));
                        rc_hyst.push(rc.hysteresis_db);
                        rc_ttt.push(u64::from(rc.time_to_trigger_ms));
                        rc_interval.push(u64::from(rc.report_interval_ms));
                        rc_amount.push(u64::from(rc.report_amount));
                    }
                }
                report_t.push(*report_t_ms);
                cmd_delay.push(*command_delay_ms);
            }
        }
        rsrp_old.push(r.rsrp_old_dbm);
        rsrp_new.push(r.rsrp_new_dbm);
        rsrq_old.push(r.rsrq_old_db);
        rsrq_new.push(r.rsrq_new_db);
        match r.min_thpt_before_bps {
            None => has_thpt.push(0),
            Some(v) => {
                has_thpt.push(1);
                thpt.push(v);
            }
        }
    }
    let stats: Vec<Vec<u64>> = [st_carrier, st_city]
        .into_iter()
        .map(|set| set.into_iter().collect())
        .collect();
    encode_group(
        rows.len() as u64,
        &stats,
        vec![
            carrier.finish(),
            city.finish(),
            t_ms.finish(),
            from.finish(),
            to.finish(),
            kind.finish(),
            idle_rel.finish(),
            evt_tag.finish(),
            evt_params.finish(),
            quantity.finish(),
            has_rc.finish(),
            rc_evt_tag.finish(),
            rc_evt_params.finish(),
            rc_quantity.finish(),
            rc_hyst.finish(),
            rc_ttt.finish(),
            rc_interval.finish(),
            rc_amount.finish(),
            report_t.finish(),
            cmd_delay.finish(),
            rsrp_old.finish(),
            rsrp_new.finish(),
            rsrq_old.finish(),
            rsrq_new.finish(),
            has_thpt.finish(),
            thpt.finish(),
        ],
    )
}

fn d1_decode_group(
    dict: &ResolvedDict,
    prefix: GroupPrefix<'_>,
) -> Result<Vec<HandoffInstance>, MmError> {
    let GroupPrefix {
        n_rows, mut cols, ..
    } = prefix;
    let cols = read_columns(&mut cols, D1_COLS)?;
    let mut carrier = UIntDecoder::new(cols[0]);
    let mut city = UIntDecoder::new(cols[1]);
    let mut t_ms = UIntDecoder::new(cols[2]);
    let mut from = UIntDecoder::new(cols[3]);
    let mut to = UIntDecoder::new(cols[4]);
    let mut kind = UIntDecoder::new(cols[5]);
    let mut idle_rel = UIntDecoder::new(cols[6]);
    let mut evt_tag = UIntDecoder::new(cols[7]);
    let mut evt_params = F64Decoder::new(cols[8]);
    let mut quantity = UIntDecoder::new(cols[9]);
    let mut has_rc = UIntDecoder::new(cols[10]);
    let mut rc_evt_tag = UIntDecoder::new(cols[11]);
    let mut rc_evt_params = F64Decoder::new(cols[12]);
    let mut rc_quantity = UIntDecoder::new(cols[13]);
    let mut rc_hyst = F64Decoder::new(cols[14]);
    let mut rc_ttt = UIntDecoder::new(cols[15]);
    let mut rc_interval = UIntDecoder::new(cols[16]);
    let mut rc_amount = UIntDecoder::new(cols[17]);
    let mut report_t = UIntDecoder::new(cols[18]);
    let mut cmd_delay = UIntDecoder::new(cols[19]);
    let mut rsrp_old = F64Decoder::new(cols[20]);
    let mut rsrp_new = F64Decoder::new(cols[21]);
    let mut rsrq_old = F64Decoder::new(cols[22]);
    let mut rsrq_new = F64Decoder::new(cols[23]);
    let mut has_thpt = UIntDecoder::new(cols[24]);
    let mut thpt = F64Decoder::new(cols[25]);
    let mut out = Vec::with_capacity(n_rows as usize);
    for _ in 0..n_rows {
        let carrier_v = dict.carrier(carrier.read()?)?;
        let city_v = dict.city(city.read()?)?;
        let t = t_ms.read()?;
        let from_v = CellId(from.read_u32()?);
        let to_v = CellId(to.read_u32()?);
        let kind_v = match kind.read()? {
            0 => HandoffKind::Idle {
                relation: relation_from(idle_rel.read()?)?,
            },
            1 => {
                let decisive = event_from(evt_tag.read()?, &mut evt_params)?;
                let q = quantity_from(quantity.read()?)?;
                let report_config = match has_rc.read()? {
                    0 => None,
                    1 => Some(ReportConfig {
                        event: event_from(rc_evt_tag.read()?, &mut rc_evt_params)?,
                        quantity: quantity_from(rc_quantity.read()?)?,
                        hysteresis_db: rc_hyst.read()?,
                        time_to_trigger_ms: rc_ttt.read_u32()?,
                        report_interval_ms: rc_interval.read_u32()?,
                        report_amount: rc_amount.read_u8()?,
                    }),
                    t => {
                        return Err(StoreError::Schema(format!("bad option flag {t}")).into());
                    }
                };
                HandoffKind::Active {
                    decisive,
                    quantity: q,
                    report_config,
                    report_t_ms: report_t.read()?,
                    command_delay_ms: cmd_delay.read()?,
                }
            }
            t => return Err(StoreError::Schema(format!("unknown handoff kind tag {t}")).into()),
        };
        let record = HandoffRecord {
            t_ms: t,
            from: from_v,
            to: to_v,
            kind: kind_v,
            rsrp_old_dbm: rsrp_old.read()?,
            rsrp_new_dbm: rsrp_new.read()?,
            rsrq_old_db: rsrq_old.read()?,
            rsrq_new_db: rsrq_new.read()?,
            min_thpt_before_bps: match has_thpt.read()? {
                0 => None,
                1 => Some(thpt.read()?),
                t => return Err(StoreError::Schema(format!("bad option flag {t}")).into()),
            },
        };
        out.push(HandoffInstance {
            carrier: carrier_v,
            city: city_v,
            record,
        });
    }
    Ok(out)
}

impl D1 {
    /// Write the dataset in the binary columnar store format with the
    /// default row-group size.
    pub fn write_store<W: Write>(&self, w: W) -> Result<(), MmError> {
        self.write_store_with(w, BLOCK_ROWS)
    }

    /// Write with an explicit row-group size.
    pub fn write_store_with<W: Write>(&self, w: W, block_rows: usize) -> Result<(), MmError> {
        let block_rows = block_rows.max(1);
        let instances: Vec<&HandoffInstance> = self.iter_handoffs().collect();
        let mut dict = DictBuilder::new();
        let mut groups = Vec::new();
        for chunk in instances.chunks(block_rows) {
            let rows: Vec<HandoffInstance> = chunk.iter().map(|&i| i.clone()).collect();
            groups.push(d1_group_payload(&mut dict, &rows));
        }
        let mut writer = StoreWriter::new(w, KIND_D1)?;
        writer.write_block(TAG_DICT, &dict.encode())?;
        for g in &groups {
            writer.write_block(TAG_ROWS, g)?;
        }
        writer.finish(instances.len() as u64)
    }

    /// Read a dataset written by [`write_store`](D1::write_store).
    pub fn read_store<R: Read>(r: R) -> Result<D1, MmError> {
        let mut instances = Vec::new();
        for row in D1StoreReader::new(r)? {
            instances.push(row?);
        }
        Ok(D1::from_instances(instances))
    }
}

/// Streaming D1 reader — the D1 twin of [`D2StoreReader`], with the same
/// pushdown configuration surface (carrier/city constraints only; D1 rows
/// have no parameter or RAT columns).
pub struct D1StoreReader<R: Read> {
    inner: StoreReader<R>,
    dict: Option<ResolvedDict>,
    buf: std::vec::IntoIter<HandoffInstance>,
    decoded: u64,
    done: bool,
    pred: Predicate,
    pushdown: bool,
    filter: Option<GroupFilter>,
    stats: ScanStats,
}

impl<R: Read> D1StoreReader<R> {
    /// Open a store stream and validate its header.
    pub fn new(r: R) -> Result<Self, MmError> {
        let inner = StoreReader::new(r)?;
        if inner.kind() != KIND_D1 {
            return Err(StoreError::Schema(format!(
                "expected kind {KIND_D1:?}, found {:?}",
                inner.kind()
            ))
            .into());
        }
        check_group_version(&inner)?;
        Ok(D1StoreReader {
            inner,
            dict: None,
            buf: Vec::new().into_iter(),
            decoded: 0,
            done: false,
            pred: Predicate::any(),
            pushdown: false,
            filter: None,
            stats: ScanStats::default(),
        })
    }

    /// Yield only rows matching `pred` (carrier/city constraints), skipping
    /// whole row groups via their vocabulary stats — skipped groups are
    /// neither decoded nor checksum-verified, as in
    /// [`D2StoreReader::with_predicate`]. Call before iterating.
    pub fn with_predicate(mut self, pred: &Predicate) -> Self {
        self.pred = pred.clone();
        self.pushdown = true;
        self
    }

    /// Yield only rows matching `pred`, decoding every group — the
    /// full-scan baseline.
    pub fn scan_with_predicate(mut self, pred: &Predicate) -> Self {
        self.pred = pred.clone();
        self.pushdown = false;
        self
    }

    /// What this scan decoded vs skipped so far (complete once iteration
    /// has finished).
    pub fn scan_stats(&self) -> ScanStats {
        self.stats
    }

    fn refill(&mut self) -> Result<bool, MmError> {
        loop {
            // Same pushdown shape as the D2 reader: rejected groups are
            // discarded on their (unverified) stats prefix, before the
            // checksum pass; unparseable prefixes fall through to the
            // verified path for a typed error.
            let Self {
                inner,
                filter,
                stats,
                ..
            } = self;
            let next = if let Some(f) = filter.as_ref() {
                inner.next_block_if(&mut |tag, payload| {
                    if tag != TAG_ROWS {
                        return true;
                    }
                    let Ok(prefix) = decode_group_prefix(payload, D1_COLS, D1_STATS) else {
                        return true;
                    };
                    if f.admits(&prefix.stats) {
                        return true;
                    }
                    stats.groups_skipped += 1;
                    stats.rows_skipped += prefix.n_rows;
                    false
                })?
            } else {
                inner.next_block()?
            };
            let Some(block) = next else {
                let declared = self.inner.records().unwrap_or(0);
                let seen = self.decoded + self.stats.rows_skipped;
                if declared != seen {
                    return Err(StoreError::Schema(format!(
                        "trailer declares {declared} rows, saw {seen}"
                    ))
                    .into());
                }
                publish_scan_stats("d1", self.stats);
                return Ok(false);
            };
            match block.tag {
                TAG_DICT => {
                    let dict =
                        ResolvedDict::new(Dict::decode(&block.payload).map_err(MmError::Store)?);
                    if self.pushdown && (self.pred.carrier.is_some() || self.pred.city.is_some()) {
                        self.filter = Some(d1_filter(&self.pred, &dict));
                    }
                    self.dict = Some(dict);
                }
                TAG_ROWS => {
                    let dict = self.dict.as_ref().ok_or_else(|| {
                        StoreError::Schema("row group before dictionary".to_string())
                    })?;
                    let prefix = decode_group_prefix(&block.payload, D1_COLS, D1_STATS)?;
                    if let Some(f) = &self.filter {
                        if !f.admits(&prefix.stats) {
                            self.stats.groups_skipped += 1;
                            self.stats.rows_skipped += prefix.n_rows;
                            continue;
                        }
                    }
                    let mut rows = d1_decode_group(dict, prefix)?;
                    self.stats.groups_decoded += 1;
                    self.decoded += rows.len() as u64;
                    if !self.pred.is_any() {
                        let pred = &self.pred;
                        rows.retain(|i| pred.matches_d1(i));
                    }
                    self.buf = rows.into_iter();
                    return Ok(true);
                }
                t => {
                    return Err(StoreError::Schema(format!("unknown block tag {t}")).into());
                }
            }
        }
    }
}

impl<R: Read> Iterator for D1StoreReader<R> {
    type Item = Result<HandoffInstance, MmError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if let Some(row) = self.buf.next() {
                return Some(Ok(row));
            }
            match self.refill() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaigns_parallel, CampaignConfig};
    use crate::crawler::crawl;
    use mmcarriers::city::City;
    use mmcarriers::world::World;

    fn small_d2() -> D2 {
        let world = World::generate(3, 0.01);
        crawl(&world, 1)
    }

    fn small_d1() -> D1 {
        let world = World::generate(3, 0.02);
        let cfg = CampaignConfig::active(6)
            .runs(1)
            .duration_ms(180_000)
            .cities(&[City::C1, City::C3]);
        run_campaigns_parallel(&world, &["A", "T"], &cfg)
    }

    #[test]
    fn event_wire_tags_are_the_typed_decisive_codes() {
        use mmcore::DecisiveEvent;
        let kinds = [
            EventKind::A1 { threshold: -100.0 },
            EventKind::A2 { threshold: -90.0 },
            EventKind::A3 { offset_db: 3.0 },
            EventKind::A4 { threshold: -80.0 },
            EventKind::A5 {
                threshold1: -70.0,
                threshold2: -95.0,
            },
            EventKind::A6 { offset_db: 2.0 },
            EventKind::B1 { threshold: -85.0 },
            EventKind::B2 {
                threshold1: -75.0,
                threshold2: -92.0,
            },
            EventKind::Periodic,
        ];
        for kind in &kinds {
            // The wire tag IS the typed code: the store format and the
            // figure labels cannot drift apart.
            let (tag, params) = event_parts(kind);
            assert_eq!(tag, kind.decisive().code(), "{kind:?}");
            // And the tag decodes back to the same variant with the same
            // payload through the real column codecs.
            let mut enc = F64Encoder::new();
            for p in params.into_iter().flatten() {
                enc.push(p);
            }
            let bytes = enc.finish();
            let mut dec = F64Decoder::new(&bytes);
            assert_eq!(&event_from(tag, &mut dec).unwrap(), kind);
        }
        // Every decisive code round-trips, and the EventKind tags cover
        // exactly the non-Idle codes (Idle never appears in a D1 row).
        for e in DecisiveEvent::ALL {
            assert_eq!(DecisiveEvent::from_code(e.code()), Some(e), "{e:?}");
            assert!(!e.label().is_empty());
        }
        assert_eq!(
            DecisiveEvent::from_code(DecisiveEvent::Idle.code() + 1),
            None
        );
        let tags: Vec<u64> = kinds.iter().map(|k| event_parts(k).0).collect();
        let codes: Vec<u64> = DecisiveEvent::ALL
            .into_iter()
            .filter(|e| *e != DecisiveEvent::Idle)
            .map(|e| e.code())
            .collect();
        assert_eq!(tags, codes);
    }

    #[test]
    fn d2_round_trips_exactly() {
        let d2 = small_d2();
        assert!(d2.len() > 100, "need a non-trivial dataset");
        let mut buf = Vec::new();
        d2.write_store(&mut buf).unwrap();
        let back = D2::read_store(buf.as_slice()).unwrap();
        assert_eq!(d2, back);
    }

    #[test]
    fn d2_streams_across_many_small_blocks() {
        let d2 = small_d2();
        let mut buf = Vec::new();
        d2.write_store_with(&mut buf, 7).unwrap();
        let rows: Result<Vec<ConfigSample>, MmError> =
            D2StoreReader::new(buf.as_slice()).unwrap().collect();
        let rows = rows.unwrap();
        assert_eq!(rows.len(), d2.len());
        assert_eq!(D2::from_samples(rows), d2);
        // More than one row group actually made it to disk.
        let mut r = mm_store::StoreReader::new(buf.as_slice()).unwrap();
        let mut blocks = 0;
        while r.next_block().unwrap().is_some() {
            blocks += 1;
        }
        assert!(blocks > d2.len() / 7, "expected many row groups");
    }

    #[test]
    fn d1_round_trips_exactly_including_kind_payloads() {
        let d1 = small_d1();
        assert!(!d1.is_empty(), "campaign produced no handoffs");
        let mut buf = Vec::new();
        d1.write_store(&mut buf).unwrap();
        let back = D1::read_store(buf.as_slice()).unwrap();
        assert_eq!(d1, back);
    }

    #[test]
    fn d1_idle_runs_round_trip_too() {
        let world = World::generate(5, 0.02);
        let cfg = CampaignConfig::idle(9)
            .runs(1)
            .duration_ms(180_000)
            .cities(&[City::C1]);
        let d1 = run_campaigns_parallel(&world, &["A", "V"], &cfg);
        let mut buf = Vec::new();
        d1.write_store_with(&mut buf, 13).unwrap();
        assert_eq!(D1::read_store(buf.as_slice()).unwrap(), d1);
    }

    #[test]
    fn empty_datasets_round_trip() {
        let mut buf = Vec::new();
        D2::default().write_store(&mut buf).unwrap();
        assert!(D2::read_store(buf.as_slice()).unwrap().is_empty());
        let mut buf = Vec::new();
        D1::default().write_store(&mut buf).unwrap();
        assert!(D1::read_store(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn kind_mismatch_is_a_schema_error() {
        let mut buf = Vec::new();
        D2::default().write_store(&mut buf).unwrap();
        assert!(matches!(
            D1::read_store(buf.as_slice()),
            Err(MmError::Store(StoreError::Schema(_)))
        ));
    }

    #[test]
    fn truncation_and_corruption_are_typed_not_panics() {
        let d2 = small_d2();
        let mut buf = Vec::new();
        d2.write_store_with(&mut buf, 50).unwrap();
        // Truncate at many points through the file.
        for cut in [0, 3, 10, buf.len() / 2, buf.len() - 1] {
            let got = D2::read_store(&buf[..cut]);
            assert!(matches!(got, Err(MmError::Store(_))), "cut {cut}: {got:?}");
        }
        // Bit-flip in the middle (some payload byte).
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            D2::read_store(flipped.as_slice()),
            Err(MmError::Store(_))
        ));
    }

    #[test]
    fn pushdown_matches_full_scan_and_skips_groups() {
        let d2 = small_d2();
        let mut buf = Vec::new();
        // Small groups so carrier clustering gives skippable blocks.
        d2.write_store_with(&mut buf, 32).unwrap();
        let pred = Predicate::any().carrier("A");
        let expect: Vec<ConfigSample> = d2.filter(&pred).cloned().collect();
        assert!(!expect.is_empty());
        assert!(expect.len() < d2.len());

        let mut pushed = D2StoreReader::new(buf.as_slice())
            .unwrap()
            .with_predicate(&pred);
        let rows: Vec<ConfigSample> = pushed.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(rows, expect, "pushdown yields exactly the matching rows");
        let stats = pushed.scan_stats();
        assert!(
            stats.groups_skipped > 0,
            "carrier-clustered crawl must skip blocks: {stats:?}"
        );
        assert!(stats.rows_skipped > 0);

        // Full-scan baseline: identical rows, zero skipped groups.
        let mut scanned = D2StoreReader::new(buf.as_slice())
            .unwrap()
            .scan_with_predicate(&pred);
        let scan_rows: Vec<ConfigSample> = scanned.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(scan_rows, expect);
        assert_eq!(scanned.scan_stats().groups_skipped, 0);
        assert!(scanned.scan_stats().groups_decoded > stats.groups_decoded);
    }

    #[test]
    fn absent_vocabulary_predicate_skips_every_group() {
        let d2 = small_d2();
        let mut buf = Vec::new();
        d2.write_store_with(&mut buf, 32).unwrap();
        let pred = Predicate::any().param("no-such-parameter");
        let mut r = D2StoreReader::new(buf.as_slice())
            .unwrap()
            .with_predicate(&pred);
        assert_eq!(r.by_ref().count(), 0);
        let stats = r.scan_stats();
        assert_eq!(stats.groups_decoded, 0, "{stats:?}");
        assert_eq!(stats.rows_skipped, d2.len() as u64);
    }

    #[test]
    fn round_offset_shifts_every_decoded_round() {
        let d2 = small_d2();
        let mut buf = Vec::new();
        d2.write_store_with(&mut buf, 64).unwrap();
        let rows: Vec<ConfigSample> = D2StoreReader::new(buf.as_slice())
            .unwrap()
            .with_round_offset(20)
            .map(|r| r.unwrap())
            .collect();
        let plain: Vec<ConfigSample> = d2.iter().cloned().collect();
        assert_eq!(rows.len(), plain.len());
        for (got, want) in rows.iter().zip(&plain) {
            assert_eq!(got.round, want.round + 20);
            assert_eq!((got.cell, got.param, got.value.to_bits()), {
                (want.cell, want.param, want.value.to_bits())
            });
        }
    }

    #[test]
    fn d1_pushdown_matches_filtered_view() {
        let d1 = small_d1();
        let mut buf = Vec::new();
        d1.write_store_with(&mut buf, 16).unwrap();
        let pred = Predicate::any().carrier("A").city(City::C1);
        let expect: Vec<HandoffInstance> = d1.filter(&pred).cloned().collect();
        assert!(!expect.is_empty());
        let mut r = D1StoreReader::new(buf.as_slice())
            .unwrap()
            .with_predicate(&pred);
        let rows: Vec<HandoffInstance> = r.by_ref().map(|x| x.unwrap()).collect();
        assert_eq!(rows, expect);
        assert!(r.scan_stats().groups_skipped > 0, "{:?}", r.scan_stats());
    }

    #[test]
    fn mismatched_column_count_fails_fast_before_decode() {
        // Hand-build a file whose single row group declares the wrong
        // column count: the reader must fail with a Schema error *without*
        // touching column bytes.
        let mut dict = DictBuilder::new();
        dict.intern("A");
        let group = encode_group(
            1,
            &[vec![0], vec![0], vec![0], vec![0]],
            vec![vec![1, 2, 3]],
        );
        let mut out = Vec::new();
        let mut w = StoreWriter::new(&mut out, KIND_D2).unwrap();
        w.write_block(TAG_DICT, &dict.encode()).unwrap();
        w.write_block(TAG_ROWS, &group).unwrap();
        w.finish(1).unwrap();
        let got = D2::read_store(out.as_slice());
        match got {
            Err(MmError::Store(StoreError::Schema(msg))) => {
                assert!(msg.contains("columns"), "unexpected message: {msg}");
            }
            other => panic!("expected schema error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_vocabulary_is_a_schema_error() {
        // Hand-build a file whose dictionary holds a carrier code the
        // workspace does not know.
        let mut sample = small_d2().iter().next().cloned().unwrap();
        sample.round = 0;
        let d2 = D2::from_samples(vec![sample]);
        let mut buf = Vec::new();
        d2.write_store(&mut buf).unwrap();
        // The dictionary block is the first frame; its first entry is the
        // carrier code. Rewrite it through the framing layer to keep CRCs
        // valid.
        let mut reader = mm_store::StoreReader::new(buf.as_slice()).unwrap();
        let dict_block = reader.next_block().unwrap().unwrap();
        let mut rest = Vec::new();
        while let Some(b) = reader.next_block().unwrap() {
            rest.push(b);
        }
        let records = reader.records().unwrap();
        let mut dict = DictBuilder::new();
        dict.intern("ZZ-no-such-carrier");
        // Re-intern the remaining entries so only entry 0 changes.
        let old = Dict::decode(&dict_block.payload).unwrap();
        for i in 1..old.len() {
            dict.intern(old.get(i as u64).unwrap());
        }
        let mut out = Vec::new();
        let mut w = StoreWriter::new(&mut out, KIND_D2).unwrap();
        w.write_block(TAG_DICT, &dict.encode()).unwrap();
        for b in &rest {
            w.write_block(b.tag, &b.payload).unwrap();
        }
        w.finish(records).unwrap();
        assert!(matches!(
            D2::read_store(out.as_slice()),
            Err(MmError::Store(StoreError::Schema(_)))
        ));
    }
}
