//! The shared dataset predicate — one filter vocabulary for queries,
//! figures, exports, and diversity slices.
//!
//! A [`Predicate`] is a conjunction of optional per-field constraints
//! (carrier, city, parameter name, RAT, round ceiling). Every consumer —
//! `D2::filter`/`D1::filter`, the filtered JSONL exports, the store
//! readers' block-skipping pushdown, and the `mmq` query planner — shares
//! this one type, so "carrier A in city C3" means exactly the same rows
//! everywhere. The builder is chainable, mirroring `Ctx::builder()`:
//!
//! ```
//! use mmlab::predicate::Predicate;
//! use mmcarriers::city::City;
//! let pred = Predicate::any().carrier("A").city(City::C3);
//! assert!(!pred.is_any());
//! ```

use crate::dataset::{ConfigSample, HandoffInstance};
use mmcarriers::city::City;
use mmradio::band::Rat;

/// Stable lowercase key for a RAT, used in normalized predicate strings
/// and CLI flags (`Rat::name()` is a display string with spaces).
pub fn rat_key(rat: Rat) -> &'static str {
    match rat {
        Rat::Lte => "lte",
        Rat::Umts => "umts",
        Rat::Gsm => "gsm",
        Rat::Evdo => "evdo",
        Rat::Cdma1x => "cdma1x",
    }
}

/// Parse a RAT from its stable key (case-insensitive). Inverse of
/// [`rat_key`].
pub fn rat_from_key(s: &str) -> Option<Rat> {
    Rat::ALL
        .into_iter()
        .find(|&r| rat_key(r).eq_ignore_ascii_case(s))
}

/// A conjunction of optional row constraints over dataset fields.
///
/// Unset fields admit everything; [`Predicate::any`] is the neutral
/// predicate that matches every row. Field names double as chainable
/// setters (the builder style of `Ctx::builder()`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Predicate {
    /// Carrier code the row must carry (`"A"`, `"T"`, …).
    pub carrier: Option<String>,
    /// City the row must have been observed in.
    pub city: Option<City>,
    /// Parameter name the row must describe (D2 only; D1 rows have no
    /// parameter and ignore this constraint).
    pub param: Option<String>,
    /// RAT the row's cell must use (D2 only).
    pub rat: Option<Rat>,
    /// Inclusive round ceiling. On raw `D2` rows this bounds the sample's
    /// crawl round; the `mmq` planner instead applies it to whole campaign
    /// rounds (file-level pruning) and strips it from the row predicate
    /// via [`Predicate::without_rounds`].
    pub round_max: Option<u32>,
}

impl Predicate {
    /// The neutral predicate: no constraints, admits every row.
    pub fn any() -> Predicate {
        Predicate::default()
    }

    /// Require this carrier code.
    pub fn carrier(mut self, code: impl Into<String>) -> Predicate {
        self.carrier = Some(code.into());
        self
    }

    /// Require this city.
    pub fn city(mut self, city: City) -> Predicate {
        self.city = Some(city);
        self
    }

    /// Require this parameter name (D2 only).
    pub fn param(mut self, name: impl Into<String>) -> Predicate {
        self.param = Some(name.into());
        self
    }

    /// Require this RAT (D2 only).
    pub fn rat(mut self, rat: Rat) -> Predicate {
        self.rat = Some(rat);
        self
    }

    /// Require `round <= n`.
    pub fn round_max(mut self, n: u32) -> Predicate {
        self.round_max = Some(n);
        self
    }

    /// Whether this predicate admits every row (no constraints set).
    pub fn is_any(&self) -> bool {
        *self == Predicate::default()
    }

    /// This predicate with the round ceiling removed — what the query
    /// planner pushes into the store readers after it has already pruned
    /// whole rounds at the manifest level.
    pub fn without_rounds(&self) -> Predicate {
        Predicate {
            round_max: None,
            ..self.clone()
        }
    }

    /// Whether a D2 row satisfies every set constraint.
    pub fn matches(&self, s: &ConfigSample) -> bool {
        self.carrier.as_deref().is_none_or(|c| c == s.carrier)
            && self.city.is_none_or(|c| c == s.city)
            && self.param.as_deref().is_none_or(|p| p == s.param)
            && self.rat.is_none_or(|r| r == s.rat)
            && self.round_max.is_none_or(|n| s.round <= n)
    }

    /// Whether a D1 row satisfies every set constraint. D1 instances have
    /// no parameter/RAT/round fields, so only the carrier and city
    /// constraints apply.
    pub fn matches_d1(&self, i: &HandoffInstance) -> bool {
        self.carrier.as_deref().is_none_or(|c| c == i.carrier)
            && self.city.is_none_or(|c| c == i.city)
    }

    /// Canonical textual form, stable across runs — the query cache keys
    /// on it, so two predicates with the same meaning must produce the
    /// same string.
    pub fn normalized(&self) -> String {
        let or_star = |v: Option<&str>| v.unwrap_or("*").to_string();
        format!(
            "carrier={};city={};param={};rat={};round<={}",
            or_star(self.carrier.as_deref()),
            or_star(self.city.map(City::as_str)),
            or_star(self.param.as_deref()),
            or_star(self.rat.map(rat_key)),
            self.round_max
                .map_or_else(|| "*".to_string(), |n| n.to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmradio::band::ChannelNumber;
    use mmradio::cell::CellId;
    use mmradio::geom::Point;

    fn sample() -> ConfigSample {
        ConfigSample {
            cell: CellId(7),
            carrier: "A",
            city: City::C3,
            rat: Rat::Lte,
            channel: ChannelNumber::earfcn(850),
            pos: Point::new(0.0, 0.0),
            round: 4,
            param: "q-Hyst",
            value: 4.0,
        }
    }

    #[test]
    fn any_admits_everything() {
        assert!(Predicate::any().is_any());
        assert!(Predicate::any().matches(&sample()));
    }

    #[test]
    fn each_constraint_filters_independently() {
        let s = sample();
        assert!(Predicate::any().carrier("A").matches(&s));
        assert!(!Predicate::any().carrier("T").matches(&s));
        assert!(Predicate::any().city(City::C3).matches(&s));
        assert!(!Predicate::any().city(City::C1).matches(&s));
        assert!(Predicate::any().param("q-Hyst").matches(&s));
        assert!(!Predicate::any().param("a3-Offset").matches(&s));
        assert!(Predicate::any().rat(Rat::Lte).matches(&s));
        assert!(!Predicate::any().rat(Rat::Gsm).matches(&s));
        assert!(Predicate::any().round_max(4).matches(&s));
        assert!(!Predicate::any().round_max(3).matches(&s));
    }

    #[test]
    fn conjunction_requires_all_constraints() {
        let pred = Predicate::any().carrier("A").city(City::C3).round_max(10);
        assert!(pred.matches(&sample()));
        let mut other = sample();
        other.city = City::C1;
        assert!(!pred.matches(&other));
    }

    #[test]
    fn without_rounds_strips_only_the_ceiling() {
        let pred = Predicate::any().carrier("A").round_max(0);
        let stripped = pred.without_rounds();
        assert_eq!(stripped.carrier.as_deref(), Some("A"));
        assert_eq!(stripped.round_max, None);
        let mut late = sample();
        late.round = 19;
        assert!(!pred.matches(&late));
        assert!(stripped.matches(&late));
    }

    #[test]
    fn normalized_is_stable_and_distinct() {
        assert_eq!(
            Predicate::any().normalized(),
            "carrier=*;city=*;param=*;rat=*;round<=*"
        );
        let pred = Predicate::any().carrier("A").rat(Rat::Umts).round_max(2);
        assert_eq!(
            pred.normalized(),
            "carrier=A;city=*;param=*;rat=umts;round<=2"
        );
        assert_ne!(pred.normalized(), pred.without_rounds().normalized());
    }

    #[test]
    fn rat_keys_round_trip() {
        for r in Rat::ALL {
            assert_eq!(rat_from_key(rat_key(r)), Some(r));
        }
        assert_eq!(rat_from_key("LTE"), Some(Rat::Lte));
        assert_eq!(rat_from_key("5g"), None);
    }
}
