#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # mmlab — the measurement tool: crawler, datasets, and analysis
//!
//! The reproduction of the paper's MMLab software: a device-centric
//! configuration crawler ([`crawler`], Type-I measurement), drive-test
//! campaign orchestration ([`campaign`], Type-II), the datasets D1/D2
//! ([`dataset`]), the diversity/dependence metrics of Eqs. (4)–(5)
//! ([`diversity`]), and small stats/report helpers used by the experiment
//! harness ([`stats`], [`report`]).

pub mod agg;
pub mod campaign;
pub mod crawler;
pub mod dataset;
pub mod diversity;
pub mod export;
pub mod predicate;
pub mod report;
pub mod stats;
pub mod store;
pub mod typeii;

pub use agg::{Reservoir, ValueCounts};
pub use campaign::{
    city_network, run_campaign, run_campaigns, run_campaigns_parallel, run_campaigns_stats,
    CampaignConfig, DRIVE_CITIES,
};
pub use crawler::{crawl, crawl_with, crawl_with_stats};
pub use dataset::{ConfigSample, HandoffInstance, D1, D2};
pub use diversity::{diversity, simpson_index, Diversity, Measure};
pub use export::{export_d1, export_d1_filtered, export_d2, export_d2_filtered};
pub use predicate::Predicate;
pub use store::{D1StoreReader, D2StoreReader, ScanStats, KIND_D1, KIND_D2};
pub use typeii::{find_cells_of_interest, guided_campaign};
