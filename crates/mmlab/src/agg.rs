//! Streaming aggregation kernels — the one-pass accumulators behind the
//! figure pipeline (DESIGN.md §10).
//!
//! Every diversity/dispersion statistic the figures need is computable from
//! a [`ValueCounts`]: a dictionary of half-grid value keys to occurrence
//! counts. Because D2 values live exactly on the 0.5 grid (enforced at
//! ingest, see [`crate::dataset::check_value`]), the key ↔ value mapping is
//! lossless and count-based arithmetic is *bit-identical* no matter what
//! order samples arrived in — the property that makes the streaming
//! columnar path byte-identical to the legacy materialized path.
//!
//! For genuinely unbounded streams whose figures need order statistics
//! (boxplots/CDFs over raw per-sample series), [`Reservoir`] keeps a
//! seeded, deterministic fixed-size sample.

use crate::dataset::value_key;
use crate::diversity::Diversity;
use mm_rng::{stream_rng, Rng, SmallRng};
use std::collections::BTreeMap;

/// Below this |mean|, [`ValueCounts::cv`] treats the value set as
/// zero-mean and reports dispersion against [`CV_ZERO_MEAN_UNIT`] instead
/// of dividing by a vanishing mean (which used to collapse genuinely
/// diverse symmetric parameters like a3-Offset to Cv = 0).
pub const CV_MEAN_EPS: f64 = 1e-9;

/// The dispersion unit for zero-mean value sets: the half-grid step all D2
/// values are quantized to, so `Cv = σ / 0.5` reads as "spread in grid
/// steps".
pub const CV_ZERO_MEAN_UNIT: f64 = 0.5;

/// Occurrence counts of distinct half-grid values — the single arithmetic
/// kernel for Simpson index, coefficient of variation, and richness.
///
/// State is bounded by the number of *distinct* values, never by the
/// stream length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueCounts {
    counts: BTreeMap<i64, u64>,
    n: u64,
}

impl ValueCounts {
    /// Empty accumulator.
    pub fn new() -> ValueCounts {
        ValueCounts::default()
    }

    /// Count every value of a slice (the materialized path).
    pub fn from_values(values: &[f64]) -> ValueCounts {
        let mut vc = ValueCounts::new();
        for &v in values {
            vc.push(v);
        }
        vc
    }

    /// Count one value (keyed on the half grid).
    pub fn push(&mut self, v: f64) {
        self.push_key(value_key(v));
    }

    /// Count one pre-computed half-grid key.
    pub fn push_key(&mut self, key: i64) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.n += 1;
    }

    /// Merge another accumulator in (counts add per key).
    pub fn merge(&mut self, other: &ValueCounts) {
        for (&k, &c) in &other.counts {
            *self.counts.entry(k).or_insert(0) += c;
        }
        self.n += other.n;
    }

    /// Total number of counted values.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Whether nothing was counted.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k as f64 / 2.0, c))
    }

    /// Empirical Simpson index of diversity `D = 1 − Σᵢ nᵢ²/N²` (Eq. 4).
    pub fn simpson(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let sum_sq: f64 = self.counts.values().map(|&c| (c as f64).powi(2)).sum();
        1.0 - sum_sq / (self.n as f64).powi(2)
    }

    /// Weighted Welford mean and (population) variance over the sorted
    /// count map — one deterministic summation order for both the
    /// streaming and the materialized path.
    pub fn mean_var(&self) -> (f64, f64) {
        if self.n == 0 {
            return (0.0, 0.0);
        }
        let mut w_sum = 0.0;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for (&k, &c) in &self.counts {
            let v = k as f64 / 2.0;
            let w = c as f64;
            w_sum += w;
            let delta = v - mean;
            mean += (w / w_sum) * delta;
            m2 += w * delta * (v - mean);
        }
        (mean, (m2 / w_sum).max(0.0))
    }

    /// Coefficient of variation `Cv = σ/|µ|` (Eq. 4), with the documented
    /// zero-mean convention: for `|µ| <` [`CV_MEAN_EPS`] the dispersion is
    /// reported against [`CV_ZERO_MEAN_UNIT`] (σ in half-grid steps)
    /// rather than collapsing to 0 for symmetric offset parameters.
    pub fn cv(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let (mean, var) = self.mean_var();
        let sd = var.sqrt();
        if mean.abs() < CV_MEAN_EPS {
            if sd == 0.0 {
                0.0
            } else {
                sd / CV_ZERO_MEAN_UNIT
            }
        } else {
            sd / mean.abs()
        }
    }

    /// Number of distinct values.
    pub fn richness(&self) -> usize {
        self.counts.len()
    }

    /// All three diversity measures at once.
    pub fn diversity(&self) -> Diversity {
        Diversity {
            simpson: self.simpson(),
            cv: self.cv(),
            richness: self.richness(),
        }
    }

    /// Value distribution as `(value, %)`, ascending by value — Fig 14/15's
    /// rendering input.
    pub fn distribution(&self) -> Vec<(f64, f64)> {
        let n = self.n.max(1) as f64;
        self.iter()
            .map(|(v, c)| (v, 100.0 * c as f64 / n))
            .collect()
    }
}

/// Seeded, deterministic fixed-size reservoir sample (Algorithm R) for
/// order statistics over streams too long to materialize. The kept sample
/// depends only on the seed, the capacity, and the stream contents/order —
/// never on thread count or wall clock.
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    items: Vec<f64>,
    rng: SmallRng,
}

impl Reservoir {
    /// A reservoir keeping at most `cap` values (cap ≥ 1).
    pub fn new(seed: u64, cap: usize) -> Reservoir {
        Reservoir {
            cap: cap.max(1),
            seen: 0,
            items: Vec::new(),
            rng: stream_rng(seed, 0x5e5e),
        }
    }

    /// Offer one value to the reservoir.
    pub fn push(&mut self, v: f64) {
        self.seen += 1;
        if self.items.len() < self.cap {
            self.items.push(v);
            return;
        }
        let j = self.rng.gen_range(0..self.seen);
        // The reservoir is full here (`len == cap`), so the bounds check
        // and the classic `j < cap` acceptance test are the same test.
        if let Some(slot) = self.items.get_mut(j as usize) {
            *slot = v;
        }
    }

    /// Stream length observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The kept sample (at most `cap` values, insertion/replacement order).
    pub fn values(&self) -> &[f64] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversity::{coefficient_of_variation, richness, simpson_index};

    #[test]
    fn counts_match_slice_kernels_on_seeded_data() {
        let mut rng = stream_rng(99, 1);
        let values: Vec<f64> = (0..500)
            .map(|_| f64::from(rng.gen_range(-6i32..=6)) / 2.0)
            .collect();
        let vc = ValueCounts::from_values(&values);
        assert_eq!(vc.n(), 500);
        assert_eq!(vc.simpson(), simpson_index(&values));
        assert_eq!(vc.cv(), coefficient_of_variation(&values));
        assert_eq!(vc.richness(), richness(&values));
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = [1.0, 2.5, 2.5, -3.0];
        let b = [2.5, 4.0];
        let mut merged = ValueCounts::from_values(&a);
        merged.merge(&ValueCounts::from_values(&b));
        let mut all = a.to_vec();
        all.extend_from_slice(&b);
        assert_eq!(merged, ValueCounts::from_values(&all));
    }

    #[test]
    fn mean_var_matches_two_pass() {
        let values = [2.0, 4.0, 2.0, 4.0, 7.5];
        let vc = ValueCounts::from_values(&values);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        let (m, v) = vc.mean_var();
        assert!((m - mean).abs() < 1e-12, "{m} vs {mean}");
        assert!((v - var).abs() < 1e-12, "{v} vs {var}");
    }

    #[test]
    fn cv_zero_mean_reports_sigma_in_grid_units() {
        // Symmetric ±3: mean 0, σ = 3 → Cv = 3 / 0.5 = 6.
        let vc = ValueCounts::from_values(&[-3.0, 3.0, -3.0, 3.0]);
        assert!((vc.cv() - 6.0).abs() < 1e-12, "{}", vc.cv());
        // All-zero set is genuinely uniform: Cv stays 0.
        assert_eq!(ValueCounts::from_values(&[0.0; 8]).cv(), 0.0);
        // Non-zero mean unaffected by the convention.
        let plain = ValueCounts::from_values(&[2.0, 4.0]);
        assert!((plain.cv() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_is_sorted_and_sums_to_100() {
        let vc = ValueCounts::from_values(&[1.0, 1.0, 2.5, -0.5]);
        let dist = vc.distribution();
        assert_eq!(dist[0].0, -0.5);
        assert_eq!(dist.last().unwrap().0, 2.5);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!(ValueCounts::new().distribution().is_empty());
    }

    #[test]
    fn reservoir_is_bounded_seeded_and_deterministic() {
        let mut a = Reservoir::new(7, 32);
        let mut b = Reservoir::new(7, 32);
        for i in 0..10_000 {
            a.push(f64::from(i));
            b.push(f64::from(i));
        }
        assert_eq!(a.values(), b.values(), "same seed, same sample");
        assert_eq!(a.values().len(), 32);
        assert_eq!(a.seen(), 10_000);
        let mut c = Reservoir::new(8, 32);
        for i in 0..10_000 {
            c.push(f64::from(i));
        }
        assert_ne!(a.values(), c.values(), "different seed, different sample");
        // Short streams are kept verbatim.
        let mut short = Reservoir::new(1, 8);
        for i in 0..5 {
            short.push(f64::from(i));
        }
        assert_eq!(short.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }
}
