//! Dataset export — the paper releases its mobility-configuration dataset;
//! this module writes D1/D2 and signaling traces as JSON-lines files with a
//! self-describing header record.

use crate::dataset::{D1, D2};
use crate::predicate::Predicate;
use mm_json::{Json, ToJson};
use mmcore::MmError;
use std::io::Write;

/// Schema version stamped into every export.
pub const SCHEMA_VERSION: u32 = 1;

fn header_json(kind: &str, records: usize) -> Json {
    Json::obj([
        ("schema", SCHEMA_VERSION.to_json()),
        ("kind", kind.to_json()),
        ("records", records.to_json()),
    ])
}

fn write_jsonl<W: Write, T: ToJson>(
    mut w: W,
    kind: &str,
    records: impl ExactSizeIterator<Item = T>,
) -> Result<(), MmError> {
    writeln!(w, "{}", header_json(kind, records.len()))?;
    for r in records {
        writeln!(w, "{}", r.to_json())?;
    }
    Ok(())
}

/// Write dataset D2 as JSON lines.
pub fn export_d2<W: Write>(w: W, d2: &D2) -> Result<(), MmError> {
    write_jsonl(w, "d2-config-samples", d2.iter())
}

/// Write dataset D1 as JSON lines.
pub fn export_d1<W: Write>(w: W, d1: &D1) -> Result<(), MmError> {
    write_jsonl(w, "d1-handoff-instances", d1.iter_handoffs())
}

/// Write the filtered view of D2 as JSON lines — same schema and header
/// as [`export_d2`], with the record count describing the filtered rows.
pub fn export_d2_filtered<W: Write>(w: W, d2: &D2, pred: &Predicate) -> Result<(), MmError> {
    let rows: Vec<_> = d2.filter(pred).collect();
    write_jsonl(w, "d2-config-samples", rows.into_iter())
}

/// Write the filtered view of D1 as JSON lines (see [`export_d2_filtered`]).
pub fn export_d1_filtered<W: Write>(w: W, d1: &D1, pred: &Predicate) -> Result<(), MmError> {
    let rows: Vec<_> = d1.filter(pred).collect();
    write_jsonl(w, "d1-handoff-instances", rows.into_iter())
}

/// Quick line-count/kind check of an exported file body (used to validate
/// round trips without re-parsing every record).
///
/// Malformed bodies (missing/unparsable header) come back as
/// [`MmError::Json`]; a record-count mismatch — a valid file that doesn't
/// describe its own campaign output — as [`MmError::Campaign`].
pub fn validate_export(body: &str) -> Result<(String, usize), MmError> {
    let mut lines = body.lines();
    let header = Json::parse(
        lines
            .next()
            .ok_or_else(|| MmError::Json("empty export".to_string()))?,
    )?;
    let kind = header["kind"]
        .as_str()
        .ok_or_else(|| MmError::Json("missing kind".to_string()))?
        .to_string();
    let declared = header["records"]
        .as_u64()
        .ok_or_else(|| MmError::Json("missing records".to_string()))? as usize;
    let actual = lines.count();
    if declared != actual {
        return Err(MmError::Campaign(format!(
            "header declares {declared} records, found {actual}"
        )));
    }
    Ok((kind, actual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::crawl;
    use mmcarriers::world::World;

    #[test]
    fn d2_export_round_trips_counts() {
        let world = World::generate(3, 0.005);
        let d2 = crawl(&world, 1);
        let mut buf = Vec::new();
        export_d2(&mut buf, &d2).unwrap();
        let body = String::from_utf8(buf).unwrap();
        let (kind, n) = validate_export(&body).unwrap();
        assert_eq!(kind, "d2-config-samples");
        assert_eq!(n, d2.len());
    }

    #[test]
    fn empty_d1_exports_header_only() {
        let mut buf = Vec::new();
        export_d1(&mut buf, &D1::default()).unwrap();
        let body = String::from_utf8(buf).unwrap();
        let (kind, n) = validate_export(&body).unwrap();
        assert_eq!(kind, "d1-handoff-instances");
        assert_eq!(n, 0);
    }

    #[test]
    fn filtered_export_counts_only_matching_rows() {
        let world = World::generate(3, 0.005);
        let d2 = crawl(&world, 1);
        let pred = Predicate::any().carrier("A");
        let expect = d2.filter(&pred).count();
        assert!(expect > 0, "carrier A must appear in the crawl");
        assert!(expect < d2.len(), "the filter must actually narrow");
        let mut buf = Vec::new();
        export_d2_filtered(&mut buf, &d2, &pred).unwrap();
        let body = String::from_utf8(buf).unwrap();
        let (kind, n) = validate_export(&body).unwrap();
        assert_eq!(kind, "d2-config-samples");
        assert_eq!(n, expect);
        // The neutral predicate exports the full dataset byte-identically.
        let mut full = Vec::new();
        export_d2(&mut full, &d2).unwrap();
        let mut neutral = Vec::new();
        export_d2_filtered(&mut neutral, &d2, &Predicate::any()).unwrap();
        assert_eq!(full, neutral);
        let mut empty = Vec::new();
        export_d1_filtered(&mut empty, &D1::default(), &pred).unwrap();
        let (kind, n) = validate_export(&String::from_utf8(empty).unwrap()).unwrap();
        assert_eq!((kind.as_str(), n), ("d1-handoff-instances", 0));
    }

    #[test]
    fn validation_catches_truncation() {
        let world = World::generate(3, 0.005);
        let d2 = crawl(&world, 1);
        let mut buf = Vec::new();
        export_d2(&mut buf, &d2).unwrap();
        let body = String::from_utf8(buf).unwrap();
        let truncated: String = body.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            validate_export(&truncated),
            Err(MmError::Campaign(_))
        ));
    }

    #[test]
    fn validation_flags_malformed_headers_as_json_errors() {
        assert!(matches!(validate_export(""), Err(MmError::Json(_))));
        assert!(matches!(
            validate_export("{not json"),
            Err(MmError::Json(_))
        ));
        assert!(matches!(
            validate_export("{\"schema\":1,\"records\":0}"),
            Err(MmError::Json(m)) if m.contains("kind")
        ));
    }
}
