//! Dataset export — the paper releases its mobility-configuration dataset;
//! this module writes D1/D2 and signaling traces as JSON-lines files with a
//! self-describing header record.

use crate::dataset::{D1, D2};
use mm_json::{Json, ToJson};
use std::io::{self, Write};

/// Schema version stamped into every export.
pub const SCHEMA_VERSION: u32 = 1;

fn header_json(kind: &str, records: usize) -> Json {
    Json::obj([
        ("schema", SCHEMA_VERSION.to_json()),
        ("kind", kind.to_json()),
        ("records", records.to_json()),
    ])
}

fn write_jsonl<W: Write, T: ToJson>(
    mut w: W,
    kind: &str,
    records: impl ExactSizeIterator<Item = T>,
) -> io::Result<()> {
    writeln!(w, "{}", header_json(kind, records.len()))?;
    for r in records {
        writeln!(w, "{}", r.to_json())?;
    }
    Ok(())
}

/// Write dataset D2 as JSON lines.
pub fn export_d2<W: Write>(w: W, d2: &D2) -> io::Result<()> {
    write_jsonl(w, "d2-config-samples", d2.samples.iter())
}

/// Write dataset D1 as JSON lines.
pub fn export_d1<W: Write>(w: W, d1: &D1) -> io::Result<()> {
    write_jsonl(w, "d1-handoff-instances", d1.instances.iter())
}

/// Quick line-count/kind check of an exported file body (used to validate
/// round trips without re-parsing every record).
pub fn validate_export(body: &str) -> Result<(String, usize), String> {
    let mut lines = body.lines();
    let header = Json::parse(lines.next().ok_or_else(|| "empty export".to_string())?)
        .map_err(|e| e.to_string())?;
    let kind = header["kind"].as_str().ok_or("missing kind")?.to_string();
    let declared = header["records"].as_u64().ok_or("missing records")? as usize;
    let actual = lines.count();
    if declared != actual {
        return Err(format!("header declares {declared} records, found {actual}"));
    }
    Ok((kind, actual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::crawl;
    use mmcarriers::world::World;

    #[test]
    fn d2_export_round_trips_counts() {
        let world = World::generate(3, 0.005);
        let d2 = crawl(&world, 1);
        let mut buf = Vec::new();
        export_d2(&mut buf, &d2).unwrap();
        let body = String::from_utf8(buf).unwrap();
        let (kind, n) = validate_export(&body).unwrap();
        assert_eq!(kind, "d2-config-samples");
        assert_eq!(n, d2.len());
    }

    #[test]
    fn empty_d1_exports_header_only() {
        let mut buf = Vec::new();
        export_d1(&mut buf, &D1::default()).unwrap();
        let body = String::from_utf8(buf).unwrap();
        let (kind, n) = validate_export(&body).unwrap();
        assert_eq!(kind, "d1-handoff-instances");
        assert_eq!(n, 0);
    }

    #[test]
    fn validation_catches_truncation() {
        let world = World::generate(3, 0.005);
        let d2 = crawl(&world, 1);
        let mut buf = Vec::new();
        export_d2(&mut buf, &d2).unwrap();
        let body = String::from_utf8(buf).unwrap();
        let truncated: String = body.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(validate_export(&truncated).is_err());
    }
}
