//! Datasets D1 and D2.
//!
//! * **D1** — handoff instances collected in Type-II (performance) runs:
//!   the paper's 14,510 active + 4,263 idle 4G→4G handoffs.
//! * **D2** — configuration samples collected in Type-I (crawl) runs: the
//!   paper's 7,996,149 samples from 32,033 cells, each sample being one
//!   `(cell, round, parameter, value)` observation with its location and
//!   frequency context.

use crate::predicate::Predicate;
use mmcarriers::city::City;
use mmcore::error::MmError;
use mmnetsim::run::HandoffRecord;
use mmradio::band::{ChannelNumber, Rat};
use mmradio::cell::CellId;
use mmradio::geom::Point;
use std::collections::BTreeSet;

/// One configuration observation (a D2 row).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSample {
    /// Observed cell.
    pub cell: CellId,
    /// Carrier code.
    pub carrier: &'static str,
    /// City ("C1".."C5" or a country-level region).
    pub city: City,
    /// The cell's RAT.
    pub rat: Rat,
    /// The channel the parameter pertains to (the serving channel for SIB3
    /// parameters, the *neighbour layer's* channel for SIB5/6/7/8 entries —
    /// this is what Fig 18's bottom panel plots).
    pub channel: ChannelNumber,
    /// Cell position (world frame), for spatial analysis.
    pub pos: Point,
    /// Crawl round the sample was taken in.
    pub round: u32,
    /// Canonical parameter name (matches `mmcore::params`).
    pub param: &'static str,
    /// Observed value (dB/dBm/ms/s/index, per the parameter).
    pub value: f64,
}

/// Dataset D2: configuration samples.
///
/// The sample store is private: all access goes through the typed query
/// accessors ([`iter`](D2::iter), [`filter_carrier`](D2::filter_carrier),
/// [`by_city`](D2::by_city), …) so the internal representation can later be
/// sharded without touching the figure code.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct D2 {
    /// All samples in crawl order.
    samples: Vec<ConfigSample>,
}

/// Largest |value| the D2 ingest contract admits: `2^51`, the magnitude up
/// to which every half-grid value `k/2` is exactly representable as an f64
/// **and** `value_key` round-trips losslessly (`key as f64 / 2.0 == value`).
/// Real parameter values (dB offsets, dBm thresholds, ms timers, priority
/// indices) are all far below this.
pub const MAX_ABS_VALUE: f64 = (1u64 << 51) as f64;

/// Validate one value against the D2 ingest contract: finite, magnitude at
/// most [`MAX_ABS_VALUE`], and exactly on the half-unit grid.
///
/// `value_key` alone would silently map NaN to key 0 (colliding with value
/// 0.0) and saturate on huge magnitudes — rejecting such rows at ingest
/// with a typed error keeps every downstream count-keyed aggregate honest.
pub fn check_value(v: f64) -> Result<(), MmError> {
    if !v.is_finite() {
        return Err(MmError::Dataset(format!("non-finite value {v}")));
    }
    if v.abs() > MAX_ABS_VALUE {
        return Err(MmError::Dataset(format!(
            "value {v} exceeds the exact half-grid range (|v| <= {MAX_ABS_VALUE})"
        )));
    }
    if (v * 2.0).fract() != 0.0 {
        return Err(MmError::Dataset(format!(
            "value {v} is not on the half-unit grid"
        )));
    }
    Ok(())
}

/// Value key on the half-unit grid (exact grouping for f64 values that all
/// live on 0.5 steps). For values admitted by [`check_value`] the mapping
/// is lossless: `value_key(v) as f64 / 2.0 == v`, which is what lets the
/// streaming accumulators reconstruct values from keys bit-exactly.
pub fn value_key(v: f64) -> i64 {
    (v * 2.0).round() as i64
}

impl ConfigSample {
    /// Validate this row's value against the D2 ingest contract
    /// ([`check_value`]), contextualizing the error with the row identity.
    pub fn check(&self) -> Result<(), MmError> {
        check_value(self.value).map_err(|e| match e {
            MmError::Dataset(msg) => MmError::Dataset(format!(
                "cell {} param {:?}: {msg}",
                self.cell.0, self.param
            )),
            other => other,
        })
    }
}

impl D2 {
    /// Build a dataset from samples in crawl order.
    pub fn from_samples(samples: Vec<ConfigSample>) -> D2 {
        D2 { samples }
    }

    /// Build a dataset from samples in crawl order, validating every row
    /// against the ingest contract ([`ConfigSample::check`]).
    pub fn try_from_samples(samples: Vec<ConfigSample>) -> Result<D2, MmError> {
        for s in &samples {
            s.check()?;
        }
        Ok(D2 { samples })
    }

    /// Append one sample.
    pub fn push(&mut self, sample: ConfigSample) {
        self.samples.push(sample);
    }

    /// All samples, in crawl order.
    pub fn iter(&self) -> std::slice::Iter<'_, ConfigSample> {
        self.samples.iter()
    }

    /// Samples of one carrier.
    #[deprecated(note = "use `filter(&Predicate::any().carrier(..))` — the shared predicate view")]
    pub fn filter_carrier<'a>(
        &'a self,
        carrier: &'a str,
    ) -> impl Iterator<Item = &'a ConfigSample> + 'a {
        self.samples.iter().filter(move |s| s.carrier == carrier)
    }

    /// Samples observed in one city.
    pub fn by_city(&self, city: City) -> impl Iterator<Item = &ConfigSample> + '_ {
        self.samples.iter().filter(move |s| s.city == city)
    }

    /// Number of samples of one carrier (Fig 12's per-carrier series).
    pub fn sample_count(&self, carrier: &str) -> usize {
        self.filter(&Predicate::any().carrier(carrier)).count()
    }

    /// Number of samples (the paper's 7,996,149-scale count).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of unique cells observed.
    pub fn unique_cells(&self) -> usize {
        self.samples
            .iter()
            .map(|s| s.cell)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// The filtered view: samples matching a [`Predicate`], in crawl
    /// order. This is the one filter surface mmq, figures, exports, and
    /// diversity slices share.
    pub fn filter<'a>(
        &'a self,
        pred: &'a Predicate,
    ) -> impl Iterator<Item = &'a ConfigSample> + 'a {
        self.samples.iter().filter(move |s| pred.matches(s))
    }

    /// Unique `(cell, value)` observations of one parameter for one carrier
    /// — §5.1: *"we consider unique samples, so as not to tip distributions
    /// in favor of cells with many same samples"*.
    pub fn unique_values(&self, carrier: &str, rat: Rat, param: &str) -> Vec<f64> {
        let mut seen: BTreeSet<(CellId, i64)> = BTreeSet::new();
        let mut out = Vec::new();
        for s in &self.samples {
            if s.carrier != carrier || s.rat != rat || s.param != param {
                continue;
            }
            if seen.insert((s.cell, value_key(s.value))) {
                out.push(s.value);
            }
        }
        out
    }

    /// Distinct parameter names present for `(carrier, rat)`.
    pub fn param_names(&self, carrier: &str, rat: Rat) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .samples
            .iter()
            .filter(|s| s.carrier == carrier && s.rat == rat)
            .map(|s| s.param)
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Samples per cell for one parameter (Fig 13a's histogram input).
    pub fn samples_per_cell(&self, param: &str) -> Vec<usize> {
        let mut counts: std::collections::BTreeMap<CellId, usize> = Default::default();
        for s in &self.samples {
            if s.param == param {
                *counts.entry(s.cell).or_default() += 1;
            }
        }
        counts.into_values().collect()
    }

    /// Carrier codes present.
    pub fn carriers(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.samples.iter().map(|s| s.carrier).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// One D1 row: a handoff instance tagged with its campaign context.
#[derive(Debug, Clone, PartialEq)]
pub struct HandoffInstance {
    /// Carrier code.
    pub carrier: &'static str,
    /// City the drive took place in.
    pub city: City,
    /// The record from the drive runner.
    pub record: HandoffRecord,
}

/// Dataset D1: handoff instances.
///
/// Like [`D2`], the instance store is private behind typed accessors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct D1 {
    /// All instances.
    instances: Vec<HandoffInstance>,
}

impl D1 {
    /// Build a dataset from instances in campaign order.
    pub fn from_instances(instances: Vec<HandoffInstance>) -> D1 {
        D1 { instances }
    }

    /// Append one instance.
    pub fn push(&mut self, instance: HandoffInstance) {
        self.instances.push(instance);
    }

    /// Append a batch of instances (one drive's output).
    pub fn append(&mut self, instances: Vec<HandoffInstance>) {
        self.instances.extend(instances);
    }

    /// All handoff instances, in campaign order.
    pub fn iter_handoffs(&self) -> std::slice::Iter<'_, HandoffInstance> {
        self.instances.iter()
    }

    /// Number of handoff instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Instances of one carrier.
    #[deprecated(note = "use `filter(&Predicate::any().carrier(..))` — the shared predicate view")]
    pub fn filter_carrier<'a>(
        &'a self,
        carrier: &'a str,
    ) -> impl Iterator<Item = &'a HandoffInstance> + 'a {
        self.instances.iter().filter(move |i| i.carrier == carrier)
    }

    /// The filtered view: instances matching a [`Predicate`] (carrier and
    /// city constraints; D1 rows have no parameter/RAT/round fields).
    pub fn filter<'a>(
        &'a self,
        pred: &'a Predicate,
    ) -> impl Iterator<Item = &'a HandoffInstance> + 'a {
        self.instances.iter().filter(move |i| pred.matches_d1(i))
    }

    /// Instances collected in one city.
    pub fn by_city(&self, city: City) -> impl Iterator<Item = &HandoffInstance> + '_ {
        self.instances.iter().filter(move |i| i.city == city)
    }

    /// Merge another dataset in.
    pub fn extend(&mut self, other: D1) {
        self.instances.extend(other.instances);
    }
}

impl<'a> IntoIterator for &'a D1 {
    type Item = &'a HandoffInstance;
    type IntoIter = std::slice::Iter<'a, HandoffInstance>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter_handoffs()
    }
}

impl<'a> IntoIterator for &'a D2 {
    type Item = &'a ConfigSample;
    type IntoIter = std::slice::Iter<'a, ConfigSample>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

use mm_json::{Json, ToJson};

impl ToJson for ConfigSample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cell", self.cell.to_json()),
            ("carrier", self.carrier.to_json()),
            // The city's wire form is its code string — exports are
            // byte-identical to the pre-`City` schema.
            ("city", self.city.as_str().to_json()),
            ("rat", self.rat.to_json()),
            ("channel", self.channel.to_json()),
            ("pos", self.pos.to_json()),
            ("round", self.round.to_json()),
            ("param", self.param.to_json()),
            ("value", self.value.to_json()),
        ])
    }
}

impl ToJson for HandoffInstance {
    fn to_json(&self) -> Json {
        Json::obj([
            ("carrier", self.carrier.to_json()),
            ("city", self.city.as_str().to_json()),
            ("record", self.record.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cell: u32, param: &'static str, value: f64, round: u32) -> ConfigSample {
        ConfigSample {
            cell: CellId(cell),
            carrier: "A",
            city: City::C1,
            rat: Rat::Lte,
            channel: ChannelNumber::earfcn(850),
            pos: Point::new(0.0, 0.0),
            round,
            param,
            value,
        }
    }

    #[test]
    fn unique_values_dedupe_per_cell() {
        let d2 = D2::from_samples(vec![
            sample(1, "q-Hyst", 4.0, 0),
            sample(1, "q-Hyst", 4.0, 1), // same cell same value: dropped
            sample(1, "q-Hyst", 6.0, 2), // same cell new value: kept
            sample(2, "q-Hyst", 4.0, 0), // other cell: kept
        ]);
        let mut vals = d2.unique_values("A", Rat::Lte, "q-Hyst");
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, vec![4.0, 4.0, 6.0]);
    }

    #[test]
    fn unique_cells_counts_distinct() {
        let d2 = D2::from_samples(vec![
            sample(1, "q-Hyst", 4.0, 0),
            sample(1, "p", 1.0, 0),
            sample(2, "p", 1.0, 0),
        ]);
        assert_eq!(d2.unique_cells(), 2);
    }

    #[test]
    fn samples_per_cell_histogram() {
        let d2 = D2::from_samples(vec![
            sample(1, "q-Hyst", 4.0, 0),
            sample(1, "q-Hyst", 4.0, 1),
            sample(2, "q-Hyst", 4.0, 0),
        ]);
        let mut counts = d2.samples_per_cell("q-Hyst");
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
    }

    fn instance(carrier: &'static str, city: City) -> HandoffInstance {
        use mmnetsim::run::{HandoffKind, HandoffRecord};
        HandoffInstance {
            carrier,
            city,
            record: HandoffRecord {
                t_ms: 1000,
                from: CellId(1),
                to: CellId(2),
                kind: HandoffKind::Idle {
                    relation: mmcore::reselect::PriorityRelation::IntraFreq,
                },
                rsrp_old_dbm: -100.0,
                rsrp_new_dbm: -95.0,
                rsrq_old_db: -12.0,
                rsrq_new_db: -10.0,
                min_thpt_before_bps: None,
            },
        }
    }

    #[test]
    fn d2_typed_accessors_filter_and_count() {
        let mut b = sample(3, "q-Hyst", 2.0, 0);
        b.carrier = "B";
        b.city = City::C3;
        let d2 = D2::from_samples(vec![
            sample(1, "q-Hyst", 4.0, 0),
            sample(2, "q-Hyst", 4.0, 0),
            b,
        ]);
        assert_eq!(d2.filter(&Predicate::any().carrier("A")).count(), 2);
        assert_eq!(d2.filter(&Predicate::any().carrier("B")).count(), 1);
        assert_eq!(d2.sample_count("A"), 2);
        assert_eq!(d2.by_city(City::C3).count(), 1);
        assert_eq!(
            d2.filter(&Predicate::any().carrier("B").city(City::C3))
                .count(),
            1
        );
        // The deprecated accessor still answers identically while callers
        // migrate onto the predicate view.
        #[allow(deprecated)]
        let legacy = d2.filter_carrier("A").count();
        assert_eq!(legacy, 2);
        assert_eq!(d2.iter().count(), d2.len());
        assert_eq!((&d2).into_iter().count(), 3);
    }

    #[test]
    fn d1_typed_accessors_filter_and_append() {
        let mut d1 = D1::from_instances(vec![instance("A", City::C1), instance("T", City::C3)]);
        d1.push(instance("A", City::C3));
        d1.append(vec![instance("V", City::C5)]);
        assert_eq!(d1.len(), 4);
        assert_eq!(d1.filter(&Predicate::any().carrier("A")).count(), 2);
        assert_eq!(d1.by_city(City::C3).count(), 2);
        assert_eq!(
            d1.filter(&Predicate::any().carrier("A").city(City::C3))
                .count(),
            1
        );
        #[allow(deprecated)]
        let legacy = d1.filter_carrier("A").count();
        assert_eq!(legacy, 2);
        assert_eq!(d1.iter_handoffs().count(), 4);
        let mut other = D1::default();
        other.push(instance("T", City::C1));
        d1.extend(other);
        assert_eq!((&d1).into_iter().count(), 5);
    }

    #[test]
    fn value_key_groups_half_grid() {
        assert_eq!(value_key(4.0), 8);
        assert_eq!(value_key(4.5), 9);
        assert_ne!(value_key(4.0), value_key(4.5));
        assert_eq!(value_key(-122.0), value_key(-122.0));
    }

    #[test]
    fn check_value_rejects_the_f64_edge_cases() {
        for bad in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            MAX_ABS_VALUE * 2.0,
            -MAX_ABS_VALUE * 2.0,
            0.25, // off-grid
            -3.1, // off-grid
            f64::MIN_POSITIVE,
            f64::EPSILON,
        ] {
            assert!(check_value(bad).is_err(), "{bad} must be rejected");
        }
        for good in [0.0, -0.0, 0.5, -0.5, 4.0, -122.0, 637.5, MAX_ABS_VALUE] {
            assert!(check_value(good).is_ok(), "{good} must be admitted");
        }
        // NaN would otherwise collide with value 0.0 under value_key:
        assert_eq!(value_key(f64::NAN), value_key(0.0));
        assert!(check_value(f64::NAN).is_err());
    }

    #[test]
    fn check_value_admits_exactly_the_lossless_keys_on_seeded_values() {
        use mm_rng::{stream_rng, Rng};
        let mut rng = stream_rng(2018, 42);
        for _ in 0..2_000 {
            // Mix of on-grid values, off-grid perturbations, and wild
            // magnitudes built from random bit patterns.
            let v = match rng.gen_range(0u32..4) {
                0 => f64::from(rng.gen_range(-20_000i32..=20_000)) / 2.0,
                1 => f64::from(rng.gen_range(-20_000i32..=20_000)) / 2.0 + 0.125,
                2 => f64::from_bits(rng.gen::<u64>()),
                _ => {
                    let exp = rng.gen_range(40i32..70);
                    f64::from(rng.gen_range(1i32..=3)) * (2.0f64).powi(exp)
                }
            };
            match check_value(v) {
                // Admitted ⇒ the key round-trips losslessly.
                Ok(()) => {
                    assert_eq!(value_key(v) as f64 / 2.0, v, "lossless round-trip for {v}");
                }
                // Rejected ⇒ genuinely outside the contract.
                Err(_) => {
                    assert!(
                        !v.is_finite() || v.abs() > MAX_ABS_VALUE || (v * 2.0).fract() != 0.0,
                        "spurious rejection of {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn try_from_samples_enforces_the_contract() {
        let good = vec![sample(1, "q-Hyst", 4.0, 0), sample(2, "q-Hyst", -3.5, 0)];
        assert!(D2::try_from_samples(good).is_ok());
        let bad = vec![
            sample(1, "q-Hyst", 4.0, 0),
            sample(7, "q-Hyst", f64::NAN, 0),
        ];
        let err = D2::try_from_samples(bad).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cell 7"), "{msg}");
        assert!(msg.contains("q-Hyst"), "{msg}");
        assert_eq!(err.exit_code(), 3);
    }
}
