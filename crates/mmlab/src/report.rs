//! Plain-text rendering of tables and series — what the `mmx` experiment
//! binaries print so every figure/table of the paper can be regenerated on
//! a terminal.

use crate::stats::BoxStats;

/// Render an aligned text table.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render a CDF as sampled points (at most `points` rows, evenly spaced).
pub fn cdf_series(label: &str, cdf: &[(f64, f64)], points: usize) -> String {
    let mut out = format!("-- CDF: {label} --\n");
    if cdf.is_empty() {
        out.push_str("(empty)\n");
        return out;
    }
    let step = (cdf.len() / points.max(1)).max(1);
    for (i, (x, p)) in cdf.iter().enumerate() {
        if i % step == 0 || i == cdf.len() - 1 {
            out.push_str(&format!("{x:>10.2}  {p:>6.1}%\n"));
        }
    }
    out
}

/// Render one boxplot row.
pub fn box_row(label: &str, b: &BoxStats) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.1}", b.min),
        format!("{:.1}", b.q1),
        format!("{:.1}", b.median),
        format!("{:.1}", b.q3),
        format!("{:.1}", b.max),
        b.n.to_string(),
    ]
}

/// Headers matching [`box_row`].
pub const BOX_HEADERS: [&str; 7] = ["group", "min", "q1", "median", "q3", "max", "n"];

/// Format bits/s in the Mbps/Kbps units the paper's figures use.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e6 {
        format!("{:.2} Mbps", bps / 1e6)
    } else {
        format!("{:.0} Kbps", bps / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::boxstats;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            "demo",
            &["a", "long_header"],
            &[
                vec!["x".into(), "y".into()],
                vec!["wide cell".into(), "z".into()],
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("long_header"));
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    fn cdf_series_handles_empty() {
        assert!(cdf_series("x", &[], 5).contains("empty"));
    }

    #[test]
    fn cdf_series_includes_last_point() {
        let c = vec![(1.0, 50.0), (2.0, 100.0)];
        let s = cdf_series("x", &c, 1);
        assert!(s.contains("100.0%"));
    }

    #[test]
    fn box_row_matches_headers() {
        let b = boxstats(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(box_row("g", &b).len(), BOX_HEADERS.len());
    }

    #[test]
    fn fmt_bps_picks_units() {
        assert_eq!(fmt_bps(2_200_000.0), "2.20 Mbps");
        assert_eq!(fmt_bps(437_000.0), "437 Kbps");
    }
}
