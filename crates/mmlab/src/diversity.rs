//! Diversity and dependence metrics — the paper's Eq. (4) and Eq. (5).
//!
//! * **Simpson index of diversity** `D = 1 − Σᵢ nᵢ²/N²` quantifies how
//!   evenly a parameter's observed values are distributed.
//! * **Coefficient of variation** `Cv = σ/|µ|` quantifies dispersion over
//!   the value range (zero-mean sets report σ against the half-grid unit;
//!   see [`crate::agg::CV_ZERO_MEAN_UNIT`]).
//! * **Richness** is the plain number of distinct values.
//! * **Dependence** `ζ_{M,θ|F} = E[|M(θ|F=Fⱼ) − M(θ)|]` measures how much a
//!   factor (frequency, city, proximity) explains a parameter's diversity.
//!
//! All measures delegate to the count-based [`ValueCounts`] kernel, so the
//! slice-based (materialized) entry points below and the streaming
//! accumulators of `mmexperiments` produce bit-identical numbers.

use crate::agg::ValueCounts;
use crate::dataset::value_key;
use mmcore::kernel::sum_f64;
use std::collections::BTreeMap;

/// The three diversity measures of one observed value set (Fig 16's rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diversity {
    /// Simpson index `D ∈ [0, 1]`.
    pub simpson: f64,
    /// Coefficient of variation.
    pub cv: f64,
    /// Number of distinct values.
    pub richness: usize,
}

/// Count occurrences of each distinct (half-grid) value.
pub fn value_counts(values: &[f64]) -> BTreeMap<i64, usize> {
    let mut counts = BTreeMap::new();
    for &v in values {
        *counts.entry(value_key(v)).or_insert(0) += 1;
    }
    counts
}

/// Empirical Simpson index of diversity (Eq. 4 left).
pub fn simpson_index(values: &[f64]) -> f64 {
    ValueCounts::from_values(values).simpson()
}

/// Empirical coefficient of variation (Eq. 4 right).
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    ValueCounts::from_values(values).cv()
}

/// Number of distinct values.
pub fn richness(values: &[f64]) -> usize {
    ValueCounts::from_values(values).richness()
}

/// All three measures at once.
pub fn diversity(values: &[f64]) -> Diversity {
    ValueCounts::from_values(values).diversity()
}

/// Which diversity measure a dependence computation conditions on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Simpson index.
    Simpson,
    /// Coefficient of variation.
    Cv,
}

fn measure_counts(m: Measure, counts: &ValueCounts) -> f64 {
    match m {
        Measure::Simpson => counts.simpson(),
        Measure::Cv => counts.cv(),
    }
}

/// Dependence of a parameter on a grouping factor (Eq. 5), over value-count
/// accumulators: `ζ = Σⱼ wⱼ·|M(θ|F=Fⱼ) − M(θ)|`, with groups weighted by
/// their share of samples. This is the streaming-native form; the slice
/// form [`dependence`] converts and delegates here.
pub fn dependence_counts<K: Ord>(m: Measure, groups: &BTreeMap<K, ValueCounts>) -> f64 {
    let mut all = ValueCounts::new();
    for g in groups.values() {
        all.merge(g);
    }
    if all.is_empty() {
        return 0.0;
    }
    let m_all = measure_counts(m, &all);
    let n = all.n() as f64;
    sum_f64(
        groups
            .values()
            .map(|g| (g.n() as f64 / n) * (measure_counts(m, g) - m_all).abs()),
    )
}

/// Dependence of a parameter on a grouping factor (Eq. 5). High ζ means
/// the factor explains much of the diversity (e.g. priorities are strongly
/// frequency-dependent, Fig 19).
pub fn dependence<K: Ord + Clone>(m: Measure, groups: &BTreeMap<K, Vec<f64>>) -> f64 {
    let counts: BTreeMap<K, ValueCounts> = groups
        .iter()
        .map(|(k, vals)| (k.clone(), ValueCounts::from_values(vals)))
        .collect();
    dependence_counts(m, &counts)
}

/// Per-cell spatial diversity (§5.4.2): for each cell, the Simpson index of
/// the parameter over all cells within `radius_m` — the quantity whose
/// boxplots Fig 21 shows growing with the radius (and ≈ 0 for spatially
/// uniform carriers).
///
/// Implemented with a grid-bucketed spatial index (bucket side = radius, so
/// every disc is covered by the 3×3 neighborhood of its center's bucket):
/// near-linear in the cell count instead of the all-pairs O(n²) scan, with
/// the exact same `distance ≤ radius` membership predicate — and since the
/// Simpson index is computed from value *counts*, the visit order of
/// neighbors cannot change the result.
pub fn spatial_diversity(cells: &[(mmradio::geom::Point, f64)], radius_m: f64) -> Vec<f64> {
    let bucket = radius_m.max(1e-9);
    let key =
        |p: &mmradio::geom::Point| ((p.x / bucket).floor() as i64, (p.y / bucket).floor() as i64);
    let mut grid: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
    for (i, (p, _)) in cells.iter().enumerate() {
        grid.entry(key(p)).or_default().push(i);
    }
    cells
        .iter()
        .map(|(center, _)| {
            let (bx, by) = key(center);
            let mut counts = ValueCounts::new();
            for dx in -1..=1i64 {
                for dy in -1..=1i64 {
                    let Some(bucket_members) = grid.get(&(bx + dx, by + dy)) else {
                        continue;
                    };
                    for &i in bucket_members {
                        if cells[i].0.distance(*center) <= radius_m {
                            counts.push(cells[i].1);
                        }
                    }
                }
            }
            counts.simpson()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmradio::geom::Point;

    #[test]
    fn simpson_of_constant_is_zero() {
        assert_eq!(simpson_index(&[4.0; 100]), 0.0);
        assert_eq!(simpson_index(&[]), 0.0);
    }

    #[test]
    fn simpson_of_even_split_is_half() {
        let vals: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { 2.0 })
            .collect();
        assert!((simpson_index(&vals) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn simpson_grows_with_evenness() {
        let skewed: Vec<f64> = (0..100).map(|i| if i < 90 { 1.0 } else { 2.0 }).collect();
        let even: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        assert!(simpson_index(&even) > simpson_index(&skewed));
    }

    #[test]
    fn cv_matches_hand_computation() {
        // Values 2 and 4 evenly: mean 3, sd 1 → 1/3.
        let vals = [2.0, 4.0, 2.0, 4.0];
        assert!((coefficient_of_variation(&vals) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(coefficient_of_variation(&[5.0; 10]), 0.0);
    }

    #[test]
    fn cv_of_zero_mean_set_reports_dispersion_not_zero() {
        // The old kernel returned 0.0 here ("perfectly uniform") although
        // σ = 3 — wrong for symmetric offset parameters like a3-Offset.
        let vals = [-3.0, 3.0, -3.0, 3.0];
        let cv = coefficient_of_variation(&vals);
        assert!((cv - 6.0).abs() < 1e-9, "σ/0.5 = 6, got {cv}");
    }

    #[test]
    fn richness_counts_distinct() {
        assert_eq!(richness(&[1.0, 1.0, 2.0, 2.5, 2.5]), 3);
        assert_eq!(richness(&[]), 0);
    }

    #[test]
    fn dependence_zero_when_groups_identical() {
        let mut groups = BTreeMap::new();
        groups.insert(1, vec![1.0, 2.0, 1.0, 2.0]);
        groups.insert(2, vec![2.0, 1.0, 2.0, 1.0]);
        assert!(dependence(Measure::Simpson, &groups) < 1e-9);
    }

    #[test]
    fn dependence_high_when_factor_explains_everything() {
        // Each group single-valued, overall diverse → |0 − D_all| = D_all.
        let mut groups = BTreeMap::new();
        groups.insert(1, vec![1.0; 50]);
        groups.insert(2, vec![2.0; 50]);
        let z = dependence(Measure::Simpson, &groups);
        let all: Vec<f64> = groups.values().flatten().copied().collect();
        assert!((z - simpson_index(&all)).abs() < 1e-9);
        assert!(z > 0.4);
    }

    #[test]
    fn dependence_counts_equals_slice_dependence() {
        let mut groups = BTreeMap::new();
        groups.insert(1u32, vec![1.0, 2.0, 2.0, 3.5]);
        groups.insert(2, vec![2.0, 2.0]);
        groups.insert(3, vec![-1.0, 1.0, -1.0]);
        let counts: BTreeMap<u32, ValueCounts> = groups
            .iter()
            .map(|(k, v)| (*k, ValueCounts::from_values(v)))
            .collect();
        for m in [Measure::Simpson, Measure::Cv] {
            assert_eq!(dependence(m, &groups), dependence_counts(m, &counts));
        }
    }

    #[test]
    fn spatial_diversity_zero_for_uniform_field() {
        let cells: Vec<(Point, f64)> = (0..50)
            .map(|i| (Point::new(f64::from(i) * 100.0, 0.0), 3.0))
            .collect();
        let d = spatial_diversity(&cells, 500.0);
        assert!(d.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn spatial_diversity_grows_with_radius_for_mixed_field() {
        // Alternating values every 400 m: small radius sees one value,
        // large radius sees both.
        let cells: Vec<(Point, f64)> = (0..60)
            .map(|i| {
                let v = if (i / 4) % 2 == 0 { 1.0 } else { 2.0 };
                (Point::new(f64::from(i) * 100.0, 0.0), v)
            })
            .collect();
        let avg = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let small = avg(spatial_diversity(&cells, 150.0));
        let large = avg(spatial_diversity(&cells, 2000.0));
        assert!(large > small, "{large} vs {small}");
    }

    /// Reference all-pairs implementation the grid index must match.
    fn spatial_diversity_naive(cells: &[(Point, f64)], radius_m: f64) -> Vec<f64> {
        cells
            .iter()
            .map(|(center, _)| {
                let cluster: Vec<f64> = cells
                    .iter()
                    .filter(|(p, _)| p.distance(*center) <= radius_m)
                    .map(|(_, v)| *v)
                    .collect();
                simpson_index(&cluster)
            })
            .collect()
    }

    #[test]
    fn grid_index_matches_all_pairs_scan_on_seeded_fields() {
        use mm_rng::{stream_rng, Rng};
        let mut rng = stream_rng(2018, 21);
        for trial in 0..4u64 {
            let n = 120 + trial as usize * 60;
            let cells: Vec<(Point, f64)> = (0..n)
                .map(|_| {
                    let p = Point::new(
                        rng.gen_range(-5_000.0..5_000.0),
                        rng.gen_range(-5_000.0..5_000.0),
                    );
                    (p, f64::from(rng.gen_range(1i32..=5)))
                })
                .collect();
            for radius in [250.0, 800.0, 2_500.0] {
                assert_eq!(
                    spatial_diversity(&cells, radius),
                    spatial_diversity_naive(&cells, radius),
                    "trial {trial} radius {radius}"
                );
            }
        }
    }
}
