//! Diversity and dependence metrics — the paper's Eq. (4) and Eq. (5).
//!
//! * **Simpson index of diversity** `D = 1 − Σᵢ nᵢ²/N²` quantifies how
//!   evenly a parameter's observed values are distributed.
//! * **Coefficient of variation** `Cv = σ/|µ|` quantifies dispersion over
//!   the value range.
//! * **Richness** is the plain number of distinct values.
//! * **Dependence** `ζ_{M,θ|F} = E[|M(θ|F=Fⱼ) − M(θ)|]` measures how much a
//!   factor (frequency, city, proximity) explains a parameter's diversity.

use crate::dataset::value_key;
use std::collections::BTreeMap;

/// The three diversity measures of one observed value set (Fig 16's rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diversity {
    /// Simpson index `D ∈ [0, 1]`.
    pub simpson: f64,
    /// Coefficient of variation.
    pub cv: f64,
    /// Number of distinct values.
    pub richness: usize,
}

/// Count occurrences of each distinct (half-grid) value.
pub fn value_counts(values: &[f64]) -> BTreeMap<i64, usize> {
    let mut counts = BTreeMap::new();
    for &v in values {
        *counts.entry(value_key(v)).or_insert(0) += 1;
    }
    counts
}

/// Empirical Simpson index of diversity (Eq. 4 left).
pub fn simpson_index(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let counts = value_counts(values);
    let sum_sq: f64 = counts.values().map(|&c| (c as f64).powi(2)).sum();
    1.0 - sum_sq / (n as f64).powi(2)
}

/// Empirical coefficient of variation (Eq. 4 right).
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    if mean.abs() < 1e-12 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    var.sqrt() / mean.abs()
}

/// Number of distinct values.
pub fn richness(values: &[f64]) -> usize {
    value_counts(values).len()
}

/// All three measures at once.
pub fn diversity(values: &[f64]) -> Diversity {
    Diversity {
        simpson: simpson_index(values),
        cv: coefficient_of_variation(values),
        richness: richness(values),
    }
}

/// Which diversity measure a dependence computation conditions on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Simpson index.
    Simpson,
    /// Coefficient of variation.
    Cv,
}

fn measure(m: Measure, values: &[f64]) -> f64 {
    match m {
        Measure::Simpson => simpson_index(values),
        Measure::Cv => coefficient_of_variation(values),
    }
}

/// Dependence of a parameter on a grouping factor (Eq. 5):
/// `ζ = Σⱼ wⱼ·|M(θ|F=Fⱼ) − M(θ)|`, with groups weighted by their share of
/// samples. High ζ means the factor explains much of the diversity (e.g.
/// priorities are strongly frequency-dependent, Fig 19).
pub fn dependence<K: Ord>(m: Measure, groups: &BTreeMap<K, Vec<f64>>) -> f64 {
    let all: Vec<f64> = groups.values().flatten().copied().collect();
    if all.is_empty() {
        return 0.0;
    }
    let m_all = measure(m, &all);
    let n = all.len() as f64;
    groups
        .values()
        .map(|vals| (vals.len() as f64 / n) * (measure(m, vals) - m_all).abs())
        .sum()
}

/// Per-cell spatial diversity (§5.4.2): for each cell, the Simpson index of
/// the parameter over all cells within `radius_m` — the quantity whose
/// boxplots Fig 21 shows growing with the radius (and ≈ 0 for spatially
/// uniform carriers).
pub fn spatial_diversity(cells: &[(mmradio::geom::Point, f64)], radius_m: f64) -> Vec<f64> {
    cells
        .iter()
        .map(|(center, _)| {
            let cluster: Vec<f64> = cells
                .iter()
                .filter(|(p, _)| p.distance(*center) <= radius_m)
                .map(|(_, v)| *v)
                .collect();
            simpson_index(&cluster)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmradio::geom::Point;

    #[test]
    fn simpson_of_constant_is_zero() {
        assert_eq!(simpson_index(&[4.0; 100]), 0.0);
        assert_eq!(simpson_index(&[]), 0.0);
    }

    #[test]
    fn simpson_of_even_split_is_half() {
        let vals: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { 2.0 })
            .collect();
        assert!((simpson_index(&vals) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn simpson_grows_with_evenness() {
        let skewed: Vec<f64> = (0..100).map(|i| if i < 90 { 1.0 } else { 2.0 }).collect();
        let even: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        assert!(simpson_index(&even) > simpson_index(&skewed));
    }

    #[test]
    fn cv_matches_hand_computation() {
        // Values 2 and 4 evenly: mean 3, sd 1 → 1/3.
        let vals = [2.0, 4.0, 2.0, 4.0];
        assert!((coefficient_of_variation(&vals) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(coefficient_of_variation(&[5.0; 10]), 0.0);
    }

    #[test]
    fn richness_counts_distinct() {
        assert_eq!(richness(&[1.0, 1.0, 2.0, 2.5, 2.5]), 3);
        assert_eq!(richness(&[]), 0);
    }

    #[test]
    fn dependence_zero_when_groups_identical() {
        let mut groups = BTreeMap::new();
        groups.insert(1, vec![1.0, 2.0, 1.0, 2.0]);
        groups.insert(2, vec![2.0, 1.0, 2.0, 1.0]);
        assert!(dependence(Measure::Simpson, &groups) < 1e-9);
    }

    #[test]
    fn dependence_high_when_factor_explains_everything() {
        // Each group single-valued, overall diverse → |0 − D_all| = D_all.
        let mut groups = BTreeMap::new();
        groups.insert(1, vec![1.0; 50]);
        groups.insert(2, vec![2.0; 50]);
        let z = dependence(Measure::Simpson, &groups);
        let all: Vec<f64> = groups.values().flatten().copied().collect();
        assert!((z - simpson_index(&all)).abs() < 1e-9);
        assert!(z > 0.4);
    }

    #[test]
    fn spatial_diversity_zero_for_uniform_field() {
        let cells: Vec<(Point, f64)> = (0..50)
            .map(|i| (Point::new(f64::from(i) * 100.0, 0.0), 3.0))
            .collect();
        let d = spatial_diversity(&cells, 500.0);
        assert!(d.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn spatial_diversity_grows_with_radius_for_mixed_field() {
        // Alternating values every 400 m: small radius sees one value,
        // large radius sees both.
        let cells: Vec<(Point, f64)> = (0..60)
            .map(|i| {
                let v = if (i / 4) % 2 == 0 { 1.0 } else { 2.0 };
                (Point::new(f64::from(i) * 100.0, 0.0), v)
            })
            .collect();
        let avg = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let small = avg(spatial_diversity(&cells, 150.0));
        let large = avg(spatial_diversity(&cells, 2000.0));
        assert!(large > small, "{large} vs {small}");
    }
}
