//! Small statistics helpers for figure generation: empirical CDFs, quantile
//! boxplot summaries, and percentage breakdowns.

/// Empirical CDF points `(x, F(x)·100%)`, one per sample, sorted.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, x)| (x, 100.0 * (i + 1) as f64 / n as f64))
        .collect()
}

/// Fraction (%) of values strictly above `threshold`.
pub fn pct_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    100.0 * values.iter().filter(|v| **v > threshold).count() as f64 / values.len() as f64
}

/// Linear-interpolated quantile (`q` in `[0,1]`); `None` for an empty set
/// (mirroring [`boxstats`] — library code must not panic on empty data,
/// which is reachable e.g. when a carrier deploys no cells of a RAT).
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - pos.floor();
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Five-number boxplot summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

/// Compute boxplot stats; `None` for an empty set.
pub fn boxstats(values: &[f64]) -> Option<BoxStats> {
    Some(BoxStats {
        min: quantile(values, 0.0)?,
        q1: quantile(values, 0.25)?,
        median: quantile(values, 0.5)?,
        q3: quantile(values, 0.75)?,
        max: quantile(values, 1.0)?,
        n: values.len(),
    })
}

/// Mean of a value slice (0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Percentage breakdown of labelled counts, in input order.
pub fn percentages<T: Clone>(counts: &[(T, usize)]) -> Vec<(T, f64)> {
    let total: usize = counts.iter().map(|(_, c)| c).sum();
    counts
        .iter()
        .map(|(l, c)| {
            (
                l.clone(),
                if total == 0 {
                    0.0
                } else {
                    100.0 * *c as f64 / total as f64
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_ends_at_100() {
        let c = cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(c[0], (1.0, 100.0 / 3.0));
        assert_eq!(c.last().unwrap().1, 100.0);
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.25), Some(2.0));
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile(&v, 0.5), Some(5.0));
        assert!((quantile(&v, 0.3).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[], 0.0), None);
    }

    #[test]
    fn boxstats_cover_five_numbers() {
        let b = boxstats(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!((b.min, b.median, b.max), (1.0, 3.0, 5.0));
        assert_eq!(b.n, 5);
        assert!(boxstats(&[]).is_none());
    }

    #[test]
    fn pct_above_counts_strictly() {
        assert_eq!(pct_above(&[1.0, 2.0, 3.0, 4.0], 2.0), 50.0);
        assert_eq!(pct_above(&[], 0.0), 0.0);
    }

    #[test]
    fn percentages_sum_to_100() {
        let p = percentages(&[("a", 3), ("b", 1)]);
        assert_eq!(p, vec![("a", 75.0), ("b", 25.0)]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
