//! The device-centric configuration crawler — MMLab's Type-I measurement.
//!
//! The crawler never touches `CellConfig` structs: for every observation it
//! takes the byte-level SIB broadcast of the cell (as `mmnetsim` would put
//! on the air), decodes it with `mmsignaling`, reassembles the
//! configuration, and extracts `(parameter, value)` samples. This enforces
//! the paper's core claim — everything in the study is learnable from a
//! phone.
//!
//! The number of crawl rounds per cell follows Fig 13a (≈ 48% of cells
//! observed more than once, with a tail out to 20+ rounds).
//!
//! The crawl of the ~32k-cell world is sharded over [`mm_exec::Executor`]:
//! each shard covers a contiguous cell range and every cell derives its own
//! RNG stream from its id, so the gathered (submission-ordered) sample list
//! is byte-identical to the sequential scan for any thread count.

use crate::dataset::{ConfigSample, D2};
use mm_exec::Executor;
use mm_rng::Rng;
use mmcarriers::world::{GeneratedCell, World, ROUNDS};
use mmcore::config::{CellConfig, Quantity};
use mmcore::events::EventKind;
use mmcore::kernel::sum_f64;
use mmradio::band::Rat;
use mmradio::rng::{stream_rng, sub_seed};

/// Fig 13a-calibrated rounds-per-cell distribution: `(rounds, weight)`.
///
/// Two published anchors pin it: 51.9% of cells are observed exactly once
/// (Fig 13a), and the crawl's mean yield must reproduce the dataset total —
/// 7,996,149 samples over 32,033 cells is ~250 samples per cell, which at
/// the per-observation parameter yield of the SIB extractor requires a mean
/// of ~3.7 rounds over the multi-observation tail.
pub const ROUNDS_PER_CELL: &[(u32, f64)] = &[
    (1, 0.52),
    (2, 0.12),
    (3, 0.07),
    (4, 0.05),
    (5, 0.04),
    (6, 0.04),
    (8, 0.04),
    (10, 0.04),
    (15, 0.04),
    (20, 0.04),
];

fn draw_rounds<R: Rng + ?Sized>(rng: &mut R) -> u32 {
    let total = sum_f64(ROUNDS_PER_CELL.iter().map(|&(_, w)| w));
    let mut x = rng.gen::<f64>() * total;
    for &(n, w) in ROUNDS_PER_CELL {
        x -= w;
        if x <= 0.0 {
            return n;
        }
    }
    1
}

/// Extract the paper's analysis parameters from one decoded configuration.
///
/// Neighbour-layer parameters are tagged with the *layer's* channel (what
/// Fig 18's candidate-priority panel needs); everything else with the
/// serving channel.
pub fn extract_samples(
    cell: &GeneratedCell,
    cfg: &CellConfig,
    round: u32,
    out: &mut Vec<ConfigSample>,
) {
    let base = |param: &'static str, value: f64| ConfigSample {
        cell: cfg.cell,
        carrier: cell.carrier,
        city: cell.city,
        rat: Rat::Lte,
        channel: cfg.channel,
        pos: mmcarriers::world::global_pos(cell),
        round,
        param,
        value,
    };
    let s = &cfg.serving;
    out.push(base("cellReselectionPriority", f64::from(s.priority)));
    out.push(base("q-Hyst", s.q_hyst_db));
    out.push(base("q-RxLevMin", s.q_rxlevmin_dbm));
    out.push(base("q-QualMin", s.q_qualmin_db));
    out.push(base("s-IntraSearchP", s.s_intra_search_db));
    out.push(base("s-NonIntraSearchP", s.s_nonintra_search_db));
    out.push(base("threshServingLowP", s.thresh_serving_low_db));
    out.push(base("t-ReselectionEUTRA", s.t_reselection_s));

    // Neighbour layers, SIB5–8: parameter names follow the owning SIB so
    // e.g. a UTRA layer's reselection timer lands in the `t-ReselectionUTRA`
    // histogram, distinct from the EUTRA one, exactly as the paper tables
    // them.
    for layer in &cfg.neighbor_freqs {
        let lp = |param: &'static str, value: f64| {
            let mut s = base(param, value);
            s.channel = layer.channel;
            s
        };
        match layer.channel.rat {
            Rat::Lte => {
                out.push(lp(
                    "interFreqCellReselectionPriority",
                    f64::from(layer.priority),
                ));
                out.push(lp("threshX-High", layer.thresh_x_high_db));
                out.push(lp("threshX-Low", layer.thresh_x_low_db));
                out.push(lp("interFreq-q-RxLevMin", layer.q_rxlevmin_dbm));
                out.push(lp("interFreq-q-OffsetFreq", layer.q_offset_freq_db));
                out.push(lp("t-ReselectionInterFreq", layer.t_reselection_s));
                out.push(lp(
                    "allowedMeasBandwidth",
                    f64::from(layer.meas_bandwidth_prb),
                ));
            }
            Rat::Umts => {
                out.push(lp(
                    "utra-CellReselectionPriority",
                    f64::from(layer.priority),
                ));
                out.push(lp("utra-threshX-High", layer.thresh_x_high_db));
                out.push(lp("utra-threshX-Low", layer.thresh_x_low_db));
                out.push(lp("utra-q-RxLevMin", layer.q_rxlevmin_dbm));
                out.push(lp("t-ReselectionUTRA", layer.t_reselection_s));
            }
            Rat::Gsm => {
                out.push(lp(
                    "geran-CellReselectionPriority",
                    f64::from(layer.priority),
                ));
                out.push(lp("geran-threshX-High", layer.thresh_x_high_db));
                out.push(lp("geran-threshX-Low", layer.thresh_x_low_db));
                out.push(lp("geran-q-RxLevMin", layer.q_rxlevmin_dbm));
                out.push(lp("t-ReselectionGERAN", layer.t_reselection_s));
            }
            Rat::Evdo => {
                out.push(lp(
                    "hrpd-CellReselectionPriority",
                    f64::from(layer.priority),
                ));
                out.push(lp("threshX-HighHRPD", layer.thresh_x_high_db));
                out.push(lp("threshX-LowHRPD", layer.thresh_x_low_db));
                out.push(lp("t-ReselectionCDMA2000", layer.t_reselection_s));
            }
            Rat::Cdma1x => {
                out.push(lp(
                    "1xrtt-CellReselectionPriority",
                    f64::from(layer.priority),
                ));
                out.push(lp("threshX-High1XRTT", layer.thresh_x_high_db));
                out.push(lp("threshX-Low1XRTT", layer.thresh_x_low_db));
                out.push(lp("t-ReselectionCDMA2000", layer.t_reselection_s));
            }
        }
    }

    // SIB4 neighbour list: one q-OffsetCell sample per listed cell.
    for &(_pci, offset_db) in &cfg.q_offset_cell_db {
        out.push(base("q-OffsetCell", offset_db));
    }

    for rc in &cfg.report_configs {
        match rc.event {
            EventKind::A3 { offset_db } => {
                out.push(base("a3-Offset", offset_db));
                out.push(base("hysteresis", rc.hysteresis_db));
            }
            EventKind::A5 {
                threshold1,
                threshold2,
            } => {
                out.push(base("a5-Threshold1", threshold1));
                out.push(base("a5-Threshold2", threshold2));
                // Track the quantity choice as its own pseudo-parameter so
                // the RSRP/RSRQ split (§4.1) is analyzable.
                out.push(base(
                    "a5-TriggerQuantity",
                    if rc.quantity == Quantity::Rsrq {
                        1.0
                    } else {
                        0.0
                    },
                ));
            }
            EventKind::A2 { threshold } => out.push(base("a2-Threshold", threshold)),
            _ => {}
        }
        if !matches!(rc.event, EventKind::Periodic) {
            out.push(base("timeToTrigger", f64::from(rc.time_to_trigger_ms)));
        }
        out.push(base("reportInterval", f64::from(rc.report_interval_ms)));
        out.push(base("reportAmount", f64::from(rc.report_amount)));
    }
}

/// Crawl one cell at one round through the full signaling round trip.
fn observe_lte(world: &World, cell: &GeneratedCell, round: u32, out: &mut Vec<ConfigSample>) {
    let Some(cfg) = world.observed_config(cell, round) else {
        return;
    };
    // Device-centric boundary: encode → decode → reassemble.
    let decoded: Vec<_> = mmsignaling::messages::broadcast(&cfg)
        .iter()
        .map(|m| {
            mmsignaling::messages::RrcMessage::decode(&m.encode())
                // mm-allow(E001): decoding bytes this crawler just encoded; a failure is a codec bug worth a loud panic
                .expect("self-produced SIBs decode")
        })
        .collect();
    // mm-allow(E001): reassembling the complete SIB set produced three lines up
    let rebuilt = mmsignaling::messages::assemble(&decoded).expect("complete SIB set");
    extract_samples(cell, &rebuilt, round, out);
}

fn observe_legacy(world: &World, cell: &GeneratedCell, round: u32, out: &mut Vec<ConfigSample>) {
    for (param, value) in world.observed_legacy_params(cell) {
        out.push(ConfigSample {
            cell: cell.id,
            carrier: cell.carrier,
            city: cell.city,
            rat: cell.rat,
            channel: cell.channel,
            pos: mmcarriers::world::global_pos(cell),
            round,
            param,
            value,
        });
    }
}

/// Crawl one cell: draw its round set and observe it at each round.
fn crawl_cell(world: &World, cell: &GeneratedCell, crawl_seed: u64, out: &mut Vec<ConfigSample>) {
    let mut rng = stream_rng(crawl_seed, sub_seed(8, u64::from(cell.id.0)));
    let n_rounds = draw_rounds(&mut rng).min(ROUNDS);
    // Choose distinct rounds, sorted (volunteers return to areas).
    let mut rounds: Vec<u32> = (0..ROUNDS).collect();
    for i in (1..rounds.len()).rev() {
        rounds.swap(i, rng.gen_range(0..=i));
    }
    rounds.truncate(n_rounds as usize);
    rounds.sort_unstable();
    for round in rounds {
        if cell.rat == Rat::Lte {
            observe_lte(world, cell, round, out);
        } else {
            observe_legacy(world, cell, round, out);
        }
    }
}

/// Cells per crawl shard: coarse enough that scheduling cost vanishes,
/// fine enough that a 32k-cell world still feeds dozens of workers.
const CRAWL_SHARD: usize = 128;

/// Run the full Type-I crawl over a world on an explicit executor.
///
/// The cell list is split into contiguous shards; shard outputs are
/// gathered in submission order, so the sample list matches the sequential
/// per-cell scan byte for byte under any thread count.
pub fn crawl_with(world: &World, crawl_seed: u64, exec: &Executor) -> D2 {
    crawl_with_stats(world, crawl_seed, exec).0
}

/// Like [`crawl_with`], also returning the executor's run statistics
/// (wall time, worker utilization) — what `mmx crawl` reports as its
/// samples/sec line without touching a wall clock itself.
pub fn crawl_with_stats(
    world: &World,
    crawl_seed: u64,
    exec: &Executor,
) -> (D2, mm_exec::RunStats) {
    let reg = mm_telemetry::global();
    let _stage = reg.span("crawl", "crawl");
    let cells_crawled = reg.counter("crawl", "cells_crawled");
    let samples_emitted = reg.counter("crawl", "samples_emitted");
    let cells = world.cells();
    let shards: Vec<&[GeneratedCell]> = cells.chunks(CRAWL_SHARD).collect();
    let (shard_samples, stats) = exec.scatter_gather_stats(shards, |_, shard| {
        let mut out = Vec::new();
        for cell in shard {
            crawl_cell(world, cell, crawl_seed, &mut out);
        }
        cells_crawled.add(shard.len() as u64);
        samples_emitted.add(out.len() as u64);
        out
    });
    let mut samples = Vec::with_capacity(shard_samples.iter().map(Vec::len).sum());
    for mut shard in shard_samples {
        samples.append(&mut shard);
    }
    // mm-allow(E001): crawler values come from the calibrated profile tables (all finite half-grid quantities) — a violation is a profile bug, not a runtime condition
    let d2 = D2::try_from_samples(samples).expect("crawler emitted an off-contract value");
    (d2, stats)
}

/// Run the full Type-I crawl over a world, producing dataset D2, on the
/// ambient executor (`MM_THREADS` or `available_parallelism()`).
pub fn crawl(world: &World, crawl_seed: u64) -> D2 {
    crawl_with(world, crawl_seed, &Executor::from_env())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcarriers::world::World;

    fn small_crawl() -> (World, D2) {
        let world = World::generate(5, 0.01);
        let d2 = crawl(&world, 77);
        (world, d2)
    }

    #[test]
    fn crawl_covers_every_cell() {
        let (world, d2) = small_crawl();
        assert_eq!(d2.unique_cells(), world.cells().len());
    }

    #[test]
    fn crawl_is_deterministic() {
        let world = World::generate(5, 0.01);
        assert_eq!(crawl(&world, 77), crawl(&world, 77));
        assert_ne!(crawl(&world, 77), crawl(&world, 78));
    }

    #[test]
    fn sharded_crawl_matches_sequential() {
        let world = World::generate(6, 0.02);
        let seq = crawl_with(&world, 21, &Executor::sequential());
        for threads in [2, 8] {
            assert_eq!(
                crawl_with(&world, 21, &Executor::new(threads)),
                seq,
                "{threads}"
            );
        }
    }

    #[test]
    fn lte_samples_carry_table2_parameters() {
        let (_, d2) = small_crawl();
        for name in [
            "cellReselectionPriority",
            "q-Hyst",
            "q-RxLevMin",
            "s-IntraSearchP",
            "s-NonIntraSearchP",
            "threshServingLowP",
            "a3-Offset",
        ] {
            assert!(d2.iter().any(|s| s.param == name), "missing {name}");
        }
    }

    #[test]
    fn legacy_rats_present_with_their_params() {
        let (_, d2) = small_crawl();
        assert!(d2
            .iter()
            .any(|s| s.rat == Rat::Umts && s.param == "q-Hyst1-s"));
        assert!(d2.iter().any(|s| s.rat == Rat::Gsm));
    }

    #[test]
    fn about_half_the_cells_have_multiple_observations() {
        let world = World::generate(9, 0.05);
        let d2 = crawl(&world, 3);
        let counts = d2.samples_per_cell("cellReselectionPriority");
        let multi = counts.iter().filter(|c| **c > 1).count();
        let frac = multi as f64 / counts.len() as f64;
        // Fig 13a: 48.1% of cells have > 1 sample.
        assert!((0.38..=0.58).contains(&frac), "{frac}");
    }

    #[test]
    fn neighbor_layer_samples_use_layer_channel() {
        let (world, d2) = small_crawl();
        let att_cell = world.cells_of("A").find(|c| c.rat == Rat::Lte).unwrap();
        let pc: Vec<_> = d2
            .iter()
            .filter(|s| s.cell == att_cell.id && s.param == "interFreqCellReselectionPriority")
            .collect();
        for s in &pc {
            assert_ne!(
                s.channel, att_cell.channel,
                "Pc tagged with the layer channel"
            );
        }
    }

    #[test]
    fn sample_volume_is_plausible() {
        // The full-scale crawl reproduces the paper's 7,996,149 samples
        // over 32,033 cells — ~250 samples per cell. A 1% world must land
        // in the same per-cell band or the ≥8M paper-scale acceptance gate
        // (scripts/verify.sh) cannot hold.
        let (world, d2) = small_crawl();
        let per_cell = d2.len() as f64 / world.cells().len() as f64;
        assert!(
            (190.0..=320.0).contains(&per_cell),
            "{} samples / {} cells = {per_cell:.1} per cell",
            d2.len(),
            world.cells().len()
        );
    }

    #[test]
    fn inter_rat_layers_and_sib4_reach_the_dataset() {
        // The SIB6/7/8 reselection layers and the SIB4 neighbour list must
        // survive the encode → decode → assemble round trip into samples.
        let (_, d2) = small_crawl();
        for name in [
            "q-QualMin",
            "q-OffsetCell",
            "utra-CellReselectionPriority",
            "t-ReselectionUTRA",
            "geran-threshX-High",
            "interFreq-q-RxLevMin",
            "reportAmount",
        ] {
            assert!(d2.iter().any(|s| s.param == name), "missing {name}");
        }
        // Inter-RAT layer samples stay attributed to the broadcasting LTE
        // cell but carry the layer's channel.
        assert!(d2
            .iter()
            .filter(|s| s.param == "t-ReselectionUTRA")
            .all(|s| s.rat == Rat::Lte && s.channel.rat == Rat::Umts));
    }
}
