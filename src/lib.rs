//! # mobility-mm — reproduction of the IMC'18 cellular mobility-configuration study
//!
//! *Mobility Support in Cellular Networks: A Measurement Study on Its
//! Configurations and Implications* (Deng, Peng, Fida, Meng, Hu — IMC 2018)
//! measured how 30 operators configure policy-based handoffs across 32,000+
//! cells, and what those configurations do to radio quality and throughput.
//!
//! This workspace rebuilds the whole measurement stack in Rust:
//!
//! * [`mmcore`] — the 3GPP policy-based handoff engine (the system under
//!   study): parameter registry, SIB configuration model, reporting events
//!   A1–A6/B1/B2, idle-mode reselection, the network decision, and the UE
//!   state machines.
//! * [`mmradio`] — radio substrate: bands/EARFCN, propagation with
//!   correlated shadowing, RSRP/RSRQ/SINR, cells and deployments.
//! * [`mmsignaling`] — bit-level SIB/RRC codec and signaling trace (the
//!   MobileInsight substitute).
//! * [`mmnetsim`] — deterministic drive-test simulator: mobility, traffic,
//!   link throughput, and the configure→measure→report→decide→execute loop.
//! * [`mmcarriers`] — 30 carrier profiles calibrated to the paper's
//!   published distributions, and the ~32k-cell world generator.
//! * [`mmlab`] — the MMLab analog: device-centric crawler, datasets D1/D2,
//!   Simpson/Cv diversity metrics, dependence measures.
//! * [`mmexperiments`] — one harness per table/figure (`mmx t2 … f22`).
//!
//! ## Quickstart
//!
//! ```
//! use mobility_mm::prelude::*;
//!
//! // A two-cell corridor with A3(3 dB) handoffs.
//! let chan = ChannelNumber::earfcn(850);
//! let model = PropagationModel::new(Environment::Urban, 7);
//! let deployment = Deployment::new(
//!     vec![cell(1, 0.0, 0.0, chan, 46.0), cell(2, 2500.0, 0.0, chan, 46.0)],
//!     model,
//! );
//! let mut configs = std::collections::BTreeMap::new();
//! for id in [1u32, 2] {
//!     let mut c = CellConfig::minimal(CellId(id), chan);
//!     c.report_configs.push(ReportConfig::a3(3.0));
//!     configs.insert(CellId(id), c);
//! }
//! let network = Network::new(deployment, configs);
//! let drive_cfg = DriveConfig::active_speedtest(
//!     Mobility::straight_line(50.0, 2500.0, 11.0),
//!     240_000,
//!     1,
//! );
//! let result = drive(&network, &drive_cfg).expect("UE attaches");
//! assert!(!result.handoffs.is_empty());
//! assert_eq!(result.handoffs[0].event_label(), "A3");
//! ```

pub use mm_exec;
pub use mmcarriers;
pub use mmcore;
pub use mmexperiments;
pub use mmlab;
pub use mmnetsim;
pub use mmradio;
pub use mmsignaling;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use mm_exec::Executor;
    pub use mmcarriers::{by_code, profiles, CarrierProfile, City, World};
    pub use mmcore::{
        CellConfig, ConnectedUe, DecisionPolicy, EventKind, IdleUe, NeighborFreqConfig, Quantity,
        ReportConfig, Reselector, ServingConfig,
    };
    pub use mmlab::{
        crawl, run_campaign, run_campaigns_parallel, CampaignConfig, Predicate, D1, D2,
    };
    pub use mmnetsim::{drive, DriveConfig, DriveResult, Mobility, Network, Traffic};
    pub use mmradio::cell::cell;
    pub use mmradio::{
        CellId, ChannelNumber, Deployment, Environment, PhyCell, Point, PropagationModel, Rat,
        Route, Rsrp, Rsrq,
    };
    pub use mmsignaling::{assemble, broadcast, RrcMessage, SignalingLog};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let p = by_code("A").expect("AT&T exists");
        assert_eq!(p.name, "AT&T");
        assert_eq!(CellId(3).to_string(), "cell#3");
    }
}
