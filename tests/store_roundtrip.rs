//! Storage-layer contract at workspace level: persisting the quick-context
//! datasets through the `mm-store` columnar format and rebuilding the
//! pipeline from the decoded files must reproduce the golden artifact hash
//! exactly — the store is lossless for everything the analysis consumes.

use mm_exec::Executor;
use mmexperiments::{run, Artifact, Ctx};
use mmlab::dataset::{D1, D2};

/// FNV-1a, the repo's reference content hash for golden outputs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// `fnv1a` of `render_all` over `Ctx::quick(2018)` — the same constant
/// `tests/determinism.rs` pins.
const GOLDEN_QUICK_2018: u64 = 12619696888513922055;

fn render_all(ctx: &Ctx) -> String {
    let exec = Executor::sequential();
    let outputs = exec.scatter_gather(Artifact::ALL.to_vec(), |_, artifact| run(ctx, artifact));
    let mut text = String::new();
    for out in outputs {
        text.push_str(out.artifact.id());
        text.push('\n');
        text.push_str(&out.text);
    }
    text
}

#[test]
fn datasets_recovered_from_the_store_reproduce_the_golden_hash() {
    // Simulate once, persist D1/D2 to columnar bytes.
    let cold = Ctx::quick(2018);
    cold.warm();
    let mut d2_bytes = Vec::new();
    cold.d2().write_store(&mut d2_bytes).expect("write d2");
    let mut d1a_bytes = Vec::new();
    cold.d1_active()
        .write_store(&mut d1a_bytes)
        .expect("write d1 active");
    let mut d1i_bytes = Vec::new();
    cold.d1_idle()
        .write_store(&mut d1i_bytes)
        .expect("write d1 idle");

    // Rebuild a fresh context entirely from the decoded files — the
    // simulation never runs again.
    let warm = Ctx::quick(2018);
    assert!(warm.preload_d2(D2::read_store(d2_bytes.as_slice()).expect("read d2")));
    assert!(warm.preload_d1_active(D1::read_store(d1a_bytes.as_slice()).expect("read d1 active")));
    assert!(warm.preload_d1_idle(D1::read_store(d1i_bytes.as_slice()).expect("read d1 idle")));

    assert_eq!(
        fnv1a(render_all(&warm).as_bytes()),
        GOLDEN_QUICK_2018,
        "artifacts rendered from stored datasets must match the golden hash"
    );
}

#[test]
fn store_encoding_is_deterministic_and_smaller_than_json() {
    let ctx = Ctx::quick(2018);
    let mut a = Vec::new();
    ctx.d2().write_store(&mut a).expect("write");
    let mut b = Vec::new();
    ctx.d2().write_store(&mut b).expect("write");
    assert_eq!(a, b, "same dataset, same bytes");

    let mut json = Vec::new();
    mmlab::export_d2(&mut json, ctx.d2()).expect("export");
    assert!(
        json.len() >= 3 * a.len(),
        "columnar must be ≥3× smaller than the JSONL export: {} vs {}",
        a.len(),
        json.len()
    );
}
