//! Property-based cross-crate tests: every configuration any built-in
//! carrier can generate must survive the byte-level signaling round trip,
//! and the diversity metrics must be invariant under crawl order.

use mmcarriers::profiles;
use mmlab::diversity::{coefficient_of_variation, simpson_index};
use mmradio::cell::CellId;
use mmradio::geom::Point;
use mmsignaling::{assemble, broadcast, RrcMessage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sampled cell configuration of any carrier round-trips through
    /// the wire codec bit-exactly.
    #[test]
    fn prop_generated_configs_round_trip(
        carrier_idx in 0usize..30,
        cell_id in 1u32..100_000,
        x in 0.0f64..20_000.0,
        y in 0.0f64..20_000.0,
        version in 0u32..4,
        seed in 0u64..1_000,
    ) {
        let profile = &profiles()[carrier_idx];
        let pos = Point::new(x, y);
        let cell = CellId(cell_id);
        let channel = profile.sample_channel(seed, cell, pos);
        let neighbors: Vec<_> = profile
            .bands
            .iter()
            .map(|b| b.channel)
            .filter(|c| *c != channel)
            .take(3)
            .collect();
        let cfg = profile.sample_cell_config(seed, cell, pos, channel, &neighbors, version);
        let wire: Vec<RrcMessage> = broadcast(&cfg)
            .iter()
            .map(|m| RrcMessage::decode(m.encode()).expect("self-produced SIBs decode"))
            .collect();
        let rebuilt = assemble(&wire).expect("complete SIB set");
        prop_assert_eq!(rebuilt, cfg);
    }

    /// Diversity metrics are permutation-invariant and bounded.
    #[test]
    fn prop_diversity_invariants(mut values in proptest::collection::vec(-70i32..70, 1..200)) {
        let as_f64: Vec<f64> = values.iter().map(|v| f64::from(*v) / 2.0).collect();
        let d = simpson_index(&as_f64);
        prop_assert!((0.0..1.0).contains(&d) || d == 0.0);
        let cv = coefficient_of_variation(&as_f64);
        prop_assert!(cv >= 0.0);
        // Permute: metrics unchanged.
        values.reverse();
        let rev: Vec<f64> = values.iter().map(|v| f64::from(*v) / 2.0).collect();
        prop_assert!((simpson_index(&rev) - d).abs() < 1e-12);
        prop_assert!((coefficient_of_variation(&rev) - cv).abs() < 1e-9);
    }

    /// The reporting-range invariant: a single-valued set has D = 0 and
    /// Cv = 0; duplicating every sample leaves both unchanged.
    #[test]
    fn prop_duplication_invariance(values in proptest::collection::vec(-50i32..50, 1..100)) {
        let xs: Vec<f64> = values.iter().map(|v| f64::from(*v)).collect();
        let doubled: Vec<f64> = xs.iter().chain(xs.iter()).copied().collect();
        prop_assert!((simpson_index(&xs) - simpson_index(&doubled)).abs() < 1e-12);
        prop_assert!(
            (coefficient_of_variation(&xs) - coefficient_of_variation(&doubled)).abs() < 1e-9
        );
    }
}

#[test]
fn every_carrier_produces_decodable_configs_for_every_event_choice() {
    use mmcarriers::EventChoice;
    use mmradio::rng::stream_rng;
    for profile in profiles() {
        for choice in [
            EventChoice::A3,
            EventChoice::A5Rsrp,
            EventChoice::A5Rsrq,
            EventChoice::Periodic,
            EventChoice::A2Primary,
        ] {
            let mut rng = stream_rng(1, 2);
            let rcs = profile.build_report_config(choice, &mut rng);
            assert!(!rcs.is_empty(), "{} {:?}", profile.code, choice);
            let msg = RrcMessage::Reconfiguration { report_configs: rcs, s_measure_dbm: None };
            let back = RrcMessage::decode(msg.encode()).expect("decodes");
            assert_eq!(back, msg, "{} {:?}", profile.code, choice);
        }
    }
}
