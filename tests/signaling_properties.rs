//! Randomized cross-crate property tests: every configuration any built-in
//! carrier can generate must survive the byte-level signaling round trip,
//! and the diversity metrics must be invariant under crawl order.
//!
//! These were proptest blocks; they are now seeded loops on `mm-rng` with
//! the same 64-case budget and the same invariants, so the whole suite is
//! deterministic and dependency-free. On failure the assert message carries
//! the case's inputs.

use mm_rng::{Rng, SmallRng};
use mmcarriers::profiles;
use mmlab::diversity::{coefficient_of_variation, simpson_index};
use mmradio::cell::CellId;
use mmradio::geom::Point;
use mmsignaling::{assemble, broadcast, RrcMessage};

const CASES: usize = 64;

/// Any sampled cell configuration of any carrier round-trips through the
/// wire codec bit-exactly.
#[test]
fn prop_generated_configs_round_trip() {
    let all = profiles();
    let mut rng = SmallRng::seed_from_u64(0x0516_7701);
    for case in 0..CASES {
        let profile = &all[rng.gen_range(0..all.len())];
        let cell = CellId(rng.gen_range(1u32..100_000));
        let pos = Point::new(rng.gen_range(0.0..20_000.0), rng.gen_range(0.0..20_000.0));
        let version = rng.gen_range(0u32..4);
        let seed = rng.gen_range(0u64..1_000);
        let channel = profile.sample_channel(seed, cell, pos);
        let neighbors: Vec<_> = profile
            .bands
            .iter()
            .map(|b| b.channel)
            .filter(|c| *c != channel)
            .take(3)
            .collect();
        let cfg = profile.sample_cell_config(seed, cell, pos, channel, &neighbors, version);
        let wire: Vec<RrcMessage> = broadcast(&cfg)
            .iter()
            .map(|m| RrcMessage::decode(&m.encode()).expect("self-produced SIBs decode"))
            .collect();
        let rebuilt = assemble(&wire).expect("complete SIB set");
        assert_eq!(
            rebuilt, cfg,
            "case {case}: carrier {} cell {cell:?} seed {seed} version {version}",
            profile.code
        );
    }
}

/// Diversity metrics are permutation-invariant and bounded.
#[test]
fn prop_diversity_invariants() {
    let mut rng = SmallRng::seed_from_u64(0x0516_7702);
    for case in 0..CASES {
        let len = rng.gen_range(1usize..200);
        let mut values: Vec<i32> = (0..len).map(|_| rng.gen_range(-70i32..70)).collect();
        let as_f64: Vec<f64> = values.iter().map(|v| f64::from(*v) / 2.0).collect();
        let d = simpson_index(&as_f64);
        assert!((0.0..1.0).contains(&d) || d == 0.0, "case {case}: D = {d}");
        let cv = coefficient_of_variation(&as_f64);
        assert!(cv >= 0.0, "case {case}: Cv = {cv}");
        // Permute: metrics unchanged.
        values.reverse();
        let rev: Vec<f64> = values.iter().map(|v| f64::from(*v) / 2.0).collect();
        assert!((simpson_index(&rev) - d).abs() < 1e-12, "case {case}");
        assert!(
            (coefficient_of_variation(&rev) - cv).abs() < 1e-9,
            "case {case}"
        );
    }
}

/// The reporting-range invariant: a single-valued set has D = 0 and Cv = 0;
/// duplicating every sample leaves both unchanged.
#[test]
fn prop_duplication_invariance() {
    let mut rng = SmallRng::seed_from_u64(0x0516_7703);
    for case in 0..CASES {
        let len = rng.gen_range(1usize..100);
        let xs: Vec<f64> = (0..len)
            .map(|_| f64::from(rng.gen_range(-50i32..50)))
            .collect();
        let doubled: Vec<f64> = xs.iter().chain(xs.iter()).copied().collect();
        assert!(
            (simpson_index(&xs) - simpson_index(&doubled)).abs() < 1e-12,
            "case {case}"
        );
        assert!(
            (coefficient_of_variation(&xs) - coefficient_of_variation(&doubled)).abs() < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn every_carrier_produces_decodable_configs_for_every_event_choice() {
    use mmcarriers::EventChoice;
    use mmradio::rng::stream_rng;
    for profile in profiles() {
        for choice in [
            EventChoice::A3,
            EventChoice::A5Rsrp,
            EventChoice::A5Rsrq,
            EventChoice::Periodic,
            EventChoice::A2Primary,
        ] {
            let mut rng = stream_rng(1, 2);
            let rcs = profile.build_report_config(choice, &mut rng);
            assert!(!rcs.is_empty(), "{} {:?}", profile.code, choice);
            let msg = RrcMessage::Reconfiguration {
                report_configs: rcs,
                s_measure_dbm: None,
            };
            let back = RrcMessage::decode(&msg.encode()).expect("decodes");
            assert_eq!(back, msg, "{} {:?}", profile.code, choice);
        }
    }
}
