//! Acceptance gate for the streaming figure pipeline (DESIGN.md §10):
//! every artifact rendered from a store-recovered context — where D2 is
//! streamed block-by-block into the figure aggregate and never
//! materialized — must be byte-identical to the cold in-memory run, for
//! any thread count.

use mm_exec::Executor;
use mmexperiments::{run, Artifact, Ctx, RunStore};

fn tmp_store(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mm-stream-equiv-{tag}-{}", std::process::id()))
}

/// Render artifacts the way `mmx` does: ordered gather of one task per
/// artifact over the shared context.
fn render(ctx: &Ctx, exec: &Executor, artifacts: &[Artifact]) -> String {
    let outputs = exec.scatter_gather(artifacts.to_vec(), |_, artifact| run(ctx, artifact));
    let mut text = String::new();
    for out in outputs {
        text.push_str(out.artifact.id());
        text.push('\n');
        text.push_str(&out.text);
    }
    text
}

#[test]
fn figures_byte_identical_streaming_vs_materialized() {
    let dir = tmp_store("figures");
    let store = RunStore::open(&dir).expect("open store");

    // Cold reference: everything simulated and aggregated in memory.
    let cold = Ctx::quick(2018);
    store.save_datasets(&cold).expect("save datasets");
    let reference = render(&cold, &Executor::sequential(), &Artifact::ALL);
    assert!(cold.d2_is_materialized(), "cold path materializes D2");

    // Store-recovered contexts: D2 arrives only as the streamed aggregate.
    for threads in [1, 2, 8] {
        let warm = Ctx::quick(2018);
        assert_eq!(
            store.load_datasets(&warm).expect("load datasets"),
            3,
            "all three datasets hit"
        );
        let text = render(&warm, &Executor::new(threads), &Artifact::ALL);
        assert_eq!(
            text, reference,
            "streamed output diverged at {threads} thread(s)"
        );
        assert!(
            !warm.d2_is_materialized(),
            "store-fed run must never materialize the raw D2 samples"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn in_memory_aggregate_path_is_the_same_figures() {
    // Even without a store, the aggregate-backed renderers must reproduce
    // the figures of a context whose aggregate was streamed off disk —
    // cross-checking the two D2Agg constructors at figure granularity.
    let dir = tmp_store("agg");
    let store = RunStore::open(&dir).expect("open store");
    let d2_figs: Vec<Artifact> = Artifact::PAPER
        .into_iter()
        .filter(|a| a.needs_d2_agg())
        .collect();
    assert_eq!(d2_figs.len(), 12, "F11..F22");

    let cold = Ctx::quick(9);
    store.save_datasets(&cold).expect("save");
    let in_memory = render(&cold, &Executor::sequential(), &d2_figs);

    let warm = Ctx::quick(9);
    store.load_datasets(&warm).expect("load");
    let streamed = render(&warm, &Executor::sequential(), &d2_figs);
    assert_eq!(in_memory, streamed);
    std::fs::remove_dir_all(&dir).ok();
}
