//! Shape checks for the reproduced figures: not absolute numbers (our
//! substrate is a simulator), but the paper's qualitative claims — who
//! dominates, directions of effects, where the crossovers sit.

use mmexperiments::{active, factors, idle, landscape, Ctx};
use mmlab::stats::{mean, pct_above};

fn ctx() -> Ctx {
    Ctx::quick(2018)
}

#[test]
fn fig5_event_mix_shape() {
    let c = ctx();
    let d1 = c.d1_active();
    for carrier in ["A", "T"] {
        let mix = active::event_mix(d1, carrier);
        let share = |label: &str| mix.iter().find(|(l, _)| l == label).unwrap().1;
        // A3 dominates for both carriers (paper: 67.4% / 67.7%).
        assert!(share("A3") > 45.0, "{carrier}: A3 {}", share("A3"));
        // A1 and A4 are (nearly) never decisive.
        assert!(share("A1") + share("A4") < 2.0, "{carrier}");
        // A2 never decides alone.
        assert!(share("A2") < 5.0, "{carrier}");
    }
    // AT&T uses A5 more than P (Fig 5a). T-Mobile's P-vs-A5 ordering is
    // calibrated at the reference density (scale 0.2, see
    // mmcarriers::builtin) — at this test's miniature scale we only require
    // that P is a substantial minority.
    let att = active::event_mix(d1, "A");
    let share = |mix: &[(String, f64)], l: &str| mix.iter().find(|(x, _)| x == l).unwrap().1;
    assert!(share(&att, "A5") > share(&att, "P"), "AT&T: A5 > P");
    // T-Mobile's strict A5 thresholds and periodic margin rarely fire at
    // this miniature density — its P-vs-A5 ordering is validated at the
    // calibrated reference scale (see EXPERIMENTS.md); here A3 dominance
    // (asserted above) is the meaningful check. AT&T's non-A3 events do
    // appear even at miniature scale:
    assert!(
        share(&att, "A5") + share(&att, "P") > 5.0,
        "AT&T: non-A3 events observed"
    );
}

#[test]
fn fig6_a3_improves_rsrp_a5_often_does_not() {
    let c = ctx();
    let groups = active::delta_rsrp_groups(c.d1_active(), "A");
    let a3 = &groups["A3"];
    assert!(a3.len() > 10, "need A3 instances: {}", a3.len());
    // Paper: 87% of A3 handoffs improve RSRP; 94% within 3 dB dynamics.
    assert!(pct_above(a3, 0.0) > 75.0, "{}", pct_above(a3, 0.0));
    assert!(pct_above(a3, -3.0) > 88.0, "{}", pct_above(a3, -3.0));
    // A5 improves less reliably than A3 (paper: 52% vs 87%).
    if let Some(a5) = groups.get("A5") {
        if a5.len() >= 10 {
            assert!(
                pct_above(a5, 0.0) < pct_above(a3, 0.0),
                "A5 {} vs A3 {}",
                pct_above(a5, 0.0),
                pct_above(a3, 0.0)
            );
        }
    }
}

#[test]
fn fig9_delta_rsrp_grows_with_a3_offset() {
    let c = ctx();
    let groups = active::delta_by_a3_offset(c.d1_active());
    // Compare small vs large configured offsets where both have data.
    let small: Vec<f64> = groups
        .iter()
        .filter(|(o, _)| **o <= 3)
        .flat_map(|(_, v)| v.iter().copied())
        .collect();
    let large: Vec<f64> = groups
        .iter()
        .filter(|(o, _)| **o >= 5)
        .flat_map(|(_, v)| v.iter().copied())
        .collect();
    if small.len() >= 10 && large.len() >= 10 {
        assert!(
            mean(&large) > mean(&small),
            "larger ∆A3 forces stronger targets: {} vs {}",
            mean(&large),
            mean(&small)
        );
    }
}

#[test]
fn fig10_only_higher_priority_goes_weaker() {
    let c = ctx();
    let groups = idle::delta_by_relation(c.d1_idle());
    for (label, deltas) in &groups {
        if deltas.len() < 8 {
            continue;
        }
        let positive = pct_above(deltas, 0.0);
        if *label == "non-intra(H)" {
            // Higher-priority reselection ignores the serving cell — weaker
            // targets happen (paper: ~20% weaker).
            assert!(positive < 95.0, "H can go weaker: {positive}");
        } else {
            assert!(positive > 90.0, "{label} must improve RSRP: {positive}");
        }
    }
}

#[test]
fn fig12_count_orderings() {
    let c = ctx();
    let vol = landscape::carrier_volume(c.d2());
    let get = |code: &str| vol.iter().find(|(x, _, _)| *x == code).unwrap();
    // The Fig 12 skyline: CM & A the largest, US carriers ≫ small-region
    // carriers, samples always exceed cells.
    assert!(get("A").1 > get("MO").1 * 5);
    assert!(get("CM").1 > get("KT").1);
    assert!(get("V").1 > get("S").1);
    for (_, cells, samples) in &vol {
        assert!(samples >= cells);
    }
}

#[test]
fn fig16_17_diversity_orderings() {
    let c = ctx();
    let d2 = c.d2();
    // Fig 16: single-valued params at the bottom, A5/TTT thresholds at top.
    let rows = landscape::diversity_table(d2, "A");
    assert!(rows.len() >= 12, "enough parameters: {}", rows.len());
    assert_eq!(rows.first().unwrap().1.simpson, 0.0);
    assert!(rows.last().unwrap().1.simpson > 0.6);
    // Fig 17: SK has the lowest diversity for every representative param.
    for (_, param) in landscape::FIG14_PARAMS {
        let sk = d2.unique_values("SK", mmradio::band::Rat::Lte, param);
        let att = d2.unique_values("A", mmradio::band::Rat::Lte, param);
        if sk.is_empty() || att.is_empty() {
            continue;
        }
        assert!(
            mmlab::simpson_index(&sk) <= mmlab::simpson_index(&att) + 1e-9,
            "{param}"
        );
    }
}

#[test]
fn fig18_19_frequency_structure() {
    let c = ctx();
    let d2 = c.d2();
    let serving = factors::priority_by_channel(d2, "A", "cellReselectionPriority");
    // Bands 12/17 low priority; band 30 high (the §5.4.1 upgrade strategy).
    let avg = |chan: u32| {
        let v = &serving[&chan];
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(
        avg(9820) > avg(5780) + 1.5,
        "band 30 {} vs band 17 {}",
        avg(9820),
        avg(5780)
    );
    assert!(avg(5110) < 2.5, "band 12 is low: {}", avg(5110));
    // Fig 19: priorities frequency-dependent, timers not.
    let (z_ps, _) = factors::freq_dependence(d2, "A", "cellReselectionPriority");
    let (z_ttt, _) = factors::freq_dependence(d2, "A", "timeToTrigger");
    assert!(z_ps > 2.0 * z_ttt, "{z_ps} vs {z_ttt}");
}

#[test]
fn fig22_rat_evolution() {
    let c = ctx();
    let d2 = c.d2();
    let med = |carrier, rat| {
        let ds = factors::rat_diversity(d2, carrier, rat);
        mmlab::stats::quantile(&ds, 0.5).unwrap_or(0.0)
    };
    use mmradio::band::Rat;
    assert!(med("A", Rat::Lte) > 0.3);
    assert!(med("A", Rat::Umts) > 0.3);
    assert!(med("S", Rat::Evdo) < 0.1);
    assert!(med("A", Rat::Gsm) < 0.05);
}
