//! Integration tests of the mm-telemetry subsystem against real workloads:
//! the deterministic snapshot must be byte-identical for any thread count,
//! and `Snapshot::diff` must isolate one workload's contribution.

use mm_exec::Executor;
use mm_json::ToJson;
use mm_telemetry::{global, Registry, Scope, Snapshot};
use mmcarriers::world::World;
use mmlab::campaign::{run_campaigns, CampaignConfig};
use mmlab::crawler::crawl_with;

fn run_workload(threads: usize) -> Snapshot {
    global().reset();
    let exec = Executor::new(threads);
    let world = World::generate(5, 0.02);
    let cfg = CampaignConfig::active(3)
        .runs(2)
        .duration_ms(120_000)
        .cities(&[mmcarriers::City::C1]);
    let d1 = run_campaigns(&world, &["A", "T"], &cfg, &exec);
    assert!(!d1.is_empty());
    let d2 = crawl_with(&world, 9, &exec);
    assert!(!d2.is_empty());
    global().snapshot()
}

/// One test fn (not several) so no other telemetry test races the global
/// registry between reset() and snapshot().
#[test]
fn deterministic_snapshot_is_thread_count_invariant() {
    let baseline = run_workload(1);
    let expected = baseline.deterministic().to_json().to_string();
    assert!(expected.contains("campaign"), "campaign section present");
    assert!(expected.contains("netsim"), "netsim section present");
    assert!(expected.contains("crawl"), "crawl section present");
    assert!(expected.contains("\"exec\""), "exec section present");
    for threads in [2, 8] {
        let got = run_workload(threads).deterministic().to_json().to_string();
        assert_eq!(
            got, expected,
            "deterministic snapshot differs at {threads} threads"
        );
    }
    // The full (non-deterministic) snapshot still carries scheduler-scoped
    // counters that the deterministic view filtered out.
    let full = run_workload(1).to_json().to_string();
    assert!(full.contains("busy_ns"));
    assert!(!expected.contains("busy_ns"));
    global().reset();
}

#[test]
fn diff_isolates_one_workloads_contribution() {
    let reg = Registry::new();
    reg.counter("sec", "events").add(7);
    reg.histogram("sec", "delay_ms", &[10, 20]).record(15);
    let before = reg.snapshot();
    reg.counter("sec", "events").add(5);
    reg.counter("sec", "late").inc();
    reg.histogram("sec", "delay_ms", &[10, 20]).record(15);
    reg.histogram("sec", "delay_ms", &[10, 20]).record(25);
    let delta = reg.snapshot().diff(&before);
    let sec = delta.section("sec").expect("section kept");
    assert_eq!(delta.counter("sec", "events"), Some(5));
    assert_eq!(
        delta.counter("sec", "late"),
        Some(1),
        "new counters pass through"
    );
    let hist = sec
        .histograms
        .iter()
        .find(|h| h.name == "delay_ms")
        .unwrap();
    assert_eq!(hist.count, 2);
    assert_eq!(hist.buckets, vec![0, 1, 1], "bucket-wise delta");
}

#[test]
fn scoped_counters_partition_the_deterministic_view() {
    let reg = Registry::new();
    reg.counter_scoped("s", "model", Scope::Sim).add(3);
    reg.counter_scoped("s", "sched", Scope::Sched).add(9);
    let det = reg.snapshot().deterministic();
    let sec = det
        .section("s")
        .expect("section with a sim counter survives");
    assert_eq!(sec.counters.len(), 1);
    assert_eq!(det.counter("s", "model"), Some(3));
    assert_eq!(det.counter("s", "sched"), None);
}

#[test]
fn snapshot_json_parses_back() {
    let reg = Registry::new();
    reg.counter("a", "n").inc();
    reg.histogram("a", "h", &[1, 2, 4]).record(3);
    let text = reg.snapshot().to_json().to_string();
    let parsed = mm_json::Json::parse(&text).expect("snapshot JSON is valid");
    assert_eq!(parsed["schema"].as_u64(), Some(1));
    assert_eq!(parsed["sections"].as_array().map(<[_]>::len), Some(1));
}
