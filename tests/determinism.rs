//! Determinism contract of the `mm-exec` scheduler: every parallel path in
//! the workspace must produce output byte-identical to its sequential
//! reference, for any thread count. These tests are the gate `scripts/
//! verify.sh` runs before trusting a parallel artifact regeneration.

use mm_exec::Executor;
use mmexperiments::{run, Artifact, Ctx};
use mmlab::campaign::{run_campaign, run_campaigns, CampaignConfig};
use mmlab::crawler::crawl_with;
use mobility_mm::prelude::*;

/// FNV-1a, the repo's reference content hash for golden outputs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn campaign_identical_for_any_thread_count() {
    let world = World::generate(41, 0.04);
    let cfg = CampaignConfig::active(6)
        .runs(2)
        .duration_ms(180_000)
        .cities(&[City::C1, City::C3]);
    let seq = {
        let mut d = run_campaign(&world, "A", &cfg);
        d.extend(run_campaign(&world, "T", &cfg));
        d
    };
    assert!(!seq.is_empty());
    for threads in [1, 2, 8] {
        let par = run_campaigns(&world, &["A", "T"], &cfg, &Executor::new(threads));
        assert_eq!(seq, par, "campaign diverged at {threads} threads");
    }
}

#[test]
fn crawl_identical_for_any_thread_count() {
    let world = World::generate(42, 0.02);
    let seq = crawl_with(&world, 13, &Executor::sequential());
    assert!(!seq.is_empty());
    for threads in [2, 8] {
        let par = crawl_with(&world, 13, &Executor::new(threads));
        assert_eq!(seq, par, "crawl diverged at {threads} threads");
    }
}

/// Render every artifact the way `mmx all ablations` does: ordered gather
/// of one task per artifact over the shared context.
fn render_all(ctx: &Ctx, exec: &Executor) -> String {
    let outputs = exec.scatter_gather(Artifact::ALL.to_vec(), |_, artifact| run(ctx, artifact));
    let mut text = String::new();
    for out in outputs {
        text.push_str(out.artifact.id());
        text.push('\n');
        text.push_str(&out.text);
    }
    text
}

#[test]
fn mmx_all_text_identical_under_parallel_scheduler() {
    let ctx = Ctx::quick(2018);
    ctx.warm();
    let seq = render_all(&ctx, &Executor::sequential());
    for threads in [2, 8] {
        assert_eq!(
            fnv1a(render_all(&ctx, &Executor::new(threads)).as_bytes()),
            fnv1a(seq.as_bytes()),
            "artifact text diverged at {threads} threads"
        );
    }

    // Golden hash of the full quick-context artifact set. A change here
    // means the *content* of the reproduction changed — bump it only with a
    // figure-level review, never to paper over scheduler nondeterminism.
    assert_eq!(
        fnv1a(seq.as_bytes()),
        GOLDEN_QUICK_2018,
        "golden artifact hash changed"
    );
}

/// `fnv1a` of `render_all` over `Ctx::quick(2018)`.
///
/// Last bump: the crawler's SIB extractor was extended to paper-scale
/// yield (SIB4 q-OffsetCell lists, SIB6/7/8 inter-RAT layers, per-layer
/// and per-report-config parameters) and the Fig 13a rounds tail was
/// recalibrated to the published dataset volume, which changes every D2
/// figure. The D1 drive figures (F5–F10) were diffed against the
/// pre-change output and are byte-identical — inter-RAT layers carry
/// sub-serving priorities and zero offsets, so the simulator never acts
/// on them.
const GOLDEN_QUICK_2018: u64 = 12619696888513922055;
