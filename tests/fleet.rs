//! Determinism contract of the `mmx fleet` multi-UE runtime: the rendered
//! report and the retained telemetry sections must be byte-identical for
//! any `MM_THREADS` and any shard count — per-UE integer tallies are
//! merged associatively in submission order, so how the UE population is
//! cut and scheduled can never leak into the output. This is the gate
//! `scripts/verify.sh` runs against the release binary.

use mm_exec::Executor;
use mm_json::ToJson;
use mm_telemetry::global;
use mmexperiments::{run_fleet_on, FleetConfig};

/// FNV-1a, the repo's reference content hash for golden outputs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn small_fleet(shards: usize) -> FleetConfig {
    FleetConfig {
        ues: 200,
        shards,
        duration_ms: 5_000,
        ..FleetConfig::default()
    }
}

/// One run under one scheduling shape: report text plus the retained
/// `fleet`/`sched` metrics JSON (exactly what `mmx fleet --metrics`
/// emits).
fn run_shape(threads: usize, shards: usize) -> (String, String) {
    global().reset();
    let report = run_fleet_on(&small_fleet(shards), &Executor::new(threads)).unwrap();
    let metrics = global()
        .snapshot()
        .deterministic()
        .retain_sections(&["fleet", "sched"])
        .to_json()
        .to_string();
    (report.render(), metrics)
}

/// One test fn (not several) so no sibling test races the global registry
/// between reset() and snapshot() — the tests/telemetry.rs pattern.
#[test]
fn fleet_report_invariant_to_threads_and_shards() {
    let (reference, reference_metrics) = run_shape(1, 1);
    assert!(reference.contains("fleet: ues 200"), "{reference}");
    assert!(
        reference_metrics.contains("events_processed"),
        "{reference_metrics}"
    );
    for threads in [1, 2, 8] {
        for shards in [1, 4, 16] {
            let (text, metrics) = run_shape(threads, shards);
            assert_eq!(
                text, reference,
                "fleet report diverged at {threads} thread(s), {shards} shard(s)"
            );
            assert_eq!(
                metrics, reference_metrics,
                "fleet metrics diverged at {threads} thread(s), {shards} shard(s)"
            );
        }
    }
    global().reset();

    // Golden hash of the 200-UE quick fleet. A change here means the
    // simulated *content* changed (per-UE streams, tally semantics, or the
    // report format) — bump it only with a review of what moved, never to
    // paper over scheduler nondeterminism.
    assert_eq!(
        fnv1a(reference.as_bytes()),
        GOLDEN_FLEET_2018,
        "golden fleet hash changed:\n{reference}"
    );
}

/// The verify-gate scale: 100k concurrent UEs in one process. Debug-mode
/// event dispatch is ~20x slower, so this only runs under `--release`
/// (where `scripts/verify.sh` exercises it through the `mmx fleet` CLI).
#[cfg(not(debug_assertions))]
#[test]
fn fleet_carries_100k_ues() {
    let cfg = FleetConfig {
        ues: 100_000,
        shards: 64,
        duration_ms: 2_000,
        ..FleetConfig::default()
    };
    let report = run_fleet_on(&cfg, &Executor::from_env()).unwrap();
    assert_eq!(report.tally.ues_attached, 100_000, "{}", report.render());
    assert_eq!(
        report.tally.sim_ms,
        100_000 * 2_000,
        "every UE stepped its full duration"
    );
}

/// `fnv1a` of the 200-UE, 5 s, seed-2018 fleet report over carrier A in
/// C1 at scale 0.05.
const GOLDEN_FLEET_2018: u64 = 14773048091601669795;
