//! End-to-end integration: world generation → signaling crawl → analysis,
//! and drive tests → D1, across crate boundaries.

use mmlab::diversity::simpson_index;
use mmnetsim::run::HandoffKind;
use mobility_mm::prelude::*;

#[test]
fn world_to_crawl_to_diversity_pipeline() {
    let world = World::generate(31, 0.03);
    let d2 = crawl(&world, 7);

    // Coverage: every generated cell appears in the crawl.
    assert_eq!(d2.unique_cells(), world.cells().len());

    // The crawl reproduces the per-carrier diversity structure end to end
    // (through the byte-level signaling round trip).
    let att = d2.unique_values("A", Rat::Lte, "threshServingLowP");
    let sk = d2.unique_values("SK", Rat::Lte, "threshServingLowP");
    assert!(
        simpson_index(&att) > 0.3,
        "AT&T diverse: {}",
        simpson_index(&att)
    );
    assert_eq!(simpson_index(&sk), 0.0, "SK single-valued");
}

#[test]
fn campaign_produces_both_d1_halves() {
    let world = World::generate(32, 0.04);
    let active = run_campaign(
        &world,
        "A",
        &CampaignConfig::active(5)
            .runs(2)
            .duration_ms(300_000)
            .cities(&[City::C1]),
    );
    let idle = run_campaign(
        &world,
        "A",
        &CampaignConfig::idle(5)
            .runs(2)
            .duration_ms(300_000)
            .cities(&[City::C1]),
    );
    assert!(!active.is_empty() && !idle.is_empty());
    for i in active.iter_handoffs() {
        assert!(matches!(i.record.kind, HandoffKind::Active { .. }));
        // The decisive report precedes the execution by the paper's
        // 80–230 ms window (quantized up to the next 100 ms epoch).
        if let HandoffKind::Active {
            report_t_ms,
            command_delay_ms,
            ..
        } = i.record.kind
        {
            assert!((80..=230).contains(&command_delay_ms));
            assert!(i.record.t_ms >= report_t_ms + command_delay_ms);
        }
    }
    for i in idle.iter_handoffs() {
        assert!(matches!(i.record.kind, HandoffKind::Idle { .. }));
    }
}

#[test]
fn crawler_only_sees_what_cells_broadcast() {
    // Device-centric property: reconstruct a cell's configuration purely
    // from encoded bytes and compare against the network's ground truth.
    let world = World::generate(33, 0.02);
    let cell = world
        .cells()
        .iter()
        .find(|c| c.rat == Rat::Lte)
        .expect("some LTE cell");
    let truth = world.observed_config(cell, 0).expect("LTE config");
    let wire: Vec<RrcMessage> = broadcast(&truth)
        .iter()
        .map(|m| RrcMessage::decode(&m.encode()).expect("decodes"))
        .collect();
    let rebuilt = assemble(&wire).expect("complete SIB set");
    assert_eq!(rebuilt, truth);
}

#[test]
fn deterministic_across_full_pipeline() {
    let a = {
        let world = World::generate(34, 0.02);
        let d2 = crawl(&world, 9);
        (world.cells().len(), d2.len())
    };
    let b = {
        let world = World::generate(34, 0.02);
        let d2 = crawl(&world, 9);
        (world.cells().len(), d2.len())
    };
    assert_eq!(a, b);
}

#[test]
fn drive_is_replayable_from_its_log() {
    // The signaling log carries enough to re-derive every handoff: each
    // mobility command is preceded by a decisive-capable uplink report.
    let world = World::generate(35, 0.04);
    let d1 = run_campaign(
        &world,
        "T",
        &CampaignConfig::active(3)
            .runs(1)
            .duration_ms(300_000)
            .cities(&[City::C3]),
    );
    assert!(!d1.is_empty());
}
