#!/usr/bin/env bash
# Offline verification gate: the whole workspace must build, lint, test and
# smoke-bench with no network and no registry crates, and the mm-exec
# parallel scheduler must be byte-identical to the sequential path.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --workspace --release
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
# Domain lints (determinism scopes, hermetic manifests, panic-free
# libraries — DESIGN.md §8): zero unsuppressed diagnostics allowed.
./target/release/mmlint --root .
cargo test -q --workspace
# The scheduler determinism contract, explicitly (also part of the suite
# above; kept separate so a violation is unmistakable in CI logs).
cargo test -q --release --test determinism
cargo bench -p mm-bench -- --smoke
cargo bench -p mm-bench --bench exec -- --smoke

# End-to-end: `mmx all ablations` stdout must not depend on the thread
# count, and neither may the deterministic telemetry snapshot emitted by
# --metrics. Any divergence here is a scheduler-determinism bug.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
seq_out="$(MM_THREADS=1 ./target/release/mmx all ablations --quick --metrics="$tmpdir/m1.json" 2>/dev/null)"
par_out="$(MM_THREADS=8 ./target/release/mmx all ablations --quick --metrics="$tmpdir/m8.json" 2>/dev/null)"
if [ "$seq_out" != "$par_out" ]; then
    echo "verify.sh: FAIL — mmx output diverges between MM_THREADS=1 and 8" >&2
    exit 1
fi
echo "verify.sh: mmx parallel output identical to sequential (MM_THREADS=1 vs 8)"
if ! cmp -s "$tmpdir/m1.json" "$tmpdir/m8.json"; then
    echo "verify.sh: FAIL — mmx --metrics snapshot diverges between MM_THREADS=1 and 8" >&2
    diff "$tmpdir/m1.json" "$tmpdir/m8.json" >&2 || true
    exit 1
fi
echo "verify.sh: mmx --metrics telemetry snapshot identical (MM_THREADS=1 vs 8)"

echo "verify.sh: build + fmt + clippy + mmlint + tests + determinism + bench smoke all green (offline)"
