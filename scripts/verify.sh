#!/usr/bin/env bash
# Offline verification gate: the whole workspace must build, lint, test and
# smoke-bench with no network and no registry crates, and the mm-exec
# parallel scheduler must be byte-identical to the sequential path.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --workspace --release
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
# Domain lints (determinism scopes, hermetic manifests, panic-free
# libraries, cross-file semantic rules — DESIGN.md §8, §13): zero
# unsuppressed diagnostics allowed, and under --strict-suppress every
# mm-allow annotation must still match a live diagnostic (stale
# suppressions are errors, not warnings).
./target/release/mmlint --root . --strict-suppress
cargo test -q --workspace
# The scheduler determinism contract, explicitly (also part of the suite
# above; kept separate so a violation is unmistakable in CI logs).
cargo test -q --release --test determinism
cargo bench -p mm-bench -- --smoke
cargo bench -p mm-bench --bench exec -- --smoke

# End-to-end: `mmx all ablations` stdout must not depend on the thread
# count, and neither may the deterministic telemetry snapshot emitted by
# --metrics. Any divergence here is a scheduler-determinism bug.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
seq_out="$(MM_THREADS=1 ./target/release/mmx all ablations --quick --metrics="$tmpdir/m1.json" 2>/dev/null)"
par_out="$(MM_THREADS=8 ./target/release/mmx all ablations --quick --metrics="$tmpdir/m8.json" 2>/dev/null)"
if [ "$seq_out" != "$par_out" ]; then
    echo "verify.sh: FAIL — mmx output diverges between MM_THREADS=1 and 8" >&2
    exit 1
fi
echo "verify.sh: mmx parallel output identical to sequential (MM_THREADS=1 vs 8)"
if ! cmp -s "$tmpdir/m1.json" "$tmpdir/m8.json"; then
    echo "verify.sh: FAIL — mmx --metrics snapshot diverges between MM_THREADS=1 and 8" >&2
    diff "$tmpdir/m1.json" "$tmpdir/m8.json" >&2 || true
    exit 1
fi
echo "verify.sh: mmx --metrics telemetry snapshot identical (MM_THREADS=1 vs 8)"

# Lint determinism (DESIGN.md §13): the scattered per-file analyses must
# gather into byte-identical output at any thread count. --no-cache keeps
# the comparison about the scheduler, not the cache.
MM_THREADS=1 ./target/release/mmlint --root . --no-cache --json > "$tmpdir/lint1.json"
MM_THREADS=8 ./target/release/mmlint --root . --no-cache --json > "$tmpdir/lint8.json"
if ! cmp -s "$tmpdir/lint1.json" "$tmpdir/lint8.json"; then
    echo "verify.sh: FAIL — mmlint --json diverges between MM_THREADS=1 and 8" >&2
    diff "$tmpdir/lint1.json" "$tmpdir/lint8.json" >&2 || true
    exit 1
fi
echo "verify.sh: mmlint --json byte-identical (MM_THREADS=1 vs 8)"

# Storage layer (DESIGN.md §9): a warm `--load` rerun must byte-identically
# replay the cold run's stdout and --metrics snapshot, at any thread count.
store="$tmpdir/store"
cold_out="$(MM_THREADS=1 ./target/release/mmx all --quick --store "$store" --save --metrics="$tmpdir/cold.json" 2>/dev/null)"
warm_out="$(MM_THREADS=8 ./target/release/mmx all --quick --store "$store" --load --metrics="$tmpdir/warm.json" 2>/dev/null)"
if [ "$cold_out" != "$warm_out" ]; then
    echo "verify.sh: FAIL — warm mmx --load stdout diverges from the cold run" >&2
    exit 1
fi
if ! cmp -s "$tmpdir/cold.json" "$tmpdir/warm.json"; then
    echo "verify.sh: FAIL — warm mmx --load metrics diverge from the cold run" >&2
    diff "$tmpdir/cold.json" "$tmpdir/warm.json" >&2 || true
    exit 1
fi
echo "verify.sh: mmx cold-vs-warm store replay byte-identical (stdout + metrics)"

# Corruption injection: a damaged store entry must fail with the typed
# runtime exit code (3), never panic and never silently fall back.
bundle="$(ls "$store"/run-*.mmst)"
corrupt_check() {
    local label="$1"
    set +e
    err="$(MM_THREADS=2 ./target/release/mmx all --quick --store "$store" --load 2>&1 >/dev/null)"
    code=$?
    set -e
    if [ "$code" -ne 3 ]; then
        echo "verify.sh: FAIL — $label store entry exited $code (want 3): $err" >&2
        exit 1
    fi
    if ! printf '%s' "$err" | grep -q "store error"; then
        echo "verify.sh: FAIL — $label store entry lacks typed diagnosis: $err" >&2
        exit 1
    fi
}
cp "$bundle" "$tmpdir/bundle.bak"
printf '\xff' | dd of="$bundle" bs=1 seek=200 conv=notrunc 2>/dev/null   # bit flip
corrupt_check "bit-flipped"
head -c 64 "$tmpdir/bundle.bak" > "$bundle"                              # truncation
corrupt_check "truncated"
printf 'XXXX' | dd of="$bundle" bs=1 conv=notrunc 2>/dev/null            # wrong magic
corrupt_check "wrong-magic"
cp "$tmpdir/bundle.bak" "$bundle"
printf '\x63' | dd of="$bundle" bs=1 seek=4 conv=notrunc 2>/dev/null     # future version
corrupt_check "future-version"
echo "verify.sh: corrupted store entries fail typed (exit 3) for all four damage classes"

# Streaming aggregation (DESIGN.md §10): with the run bundle gone but the
# dataset entries still cached, a --load falls back to the cold path fed by
# the *streamed* D2 aggregate — its stdout must byte-match the materialized
# cold run above.
rm -f "$store"/run-*.mmst
stream_out="$(MM_THREADS=8 ./target/release/mmx all --quick --store "$store" --load 2>/dev/null)"
if [ "$cold_out" != "$stream_out" ]; then
    echo "verify.sh: FAIL — streamed-aggregate re-render diverges from the materialized run" >&2
    exit 1
fi
echo "verify.sh: streamed D2 aggregate re-render byte-identical to the materialized run"

# Query front-end (DESIGN.md §11): `mmq` must answer every store-served
# artifact byte-identically to `mmx --load` streaming the same campaign,
# replay warm answers from the query cache alone, and union appended
# rounds without ever rewriting a prior round's file.
qstore="$tmpdir/qstore"
./target/release/mmx crawl --quick --store "$qstore" >/dev/null 2>&1
served="t2 t3 t4 f11 f12 f13 f14 f15 f16 f17 f18 f19 f20 f21 f22"
mmx_q="$(MM_THREADS=8 ./target/release/mmx $served --quick --store "$qstore" --load 2>/dev/null)"
mmq_q="$(./target/release/mmq $served --quick --store "$qstore" 2>/dev/null)"
if [ "$mmx_q" != "$mmq_q" ]; then
    echo "verify.sh: FAIL — mmq output diverges from mmx --load on the same campaign" >&2
    exit 1
fi
echo "verify.sh: mmq answers all 15 store-served artifacts byte-identically to mmx --load"

warm_err="$(./target/release/mmq $served --quick --store "$qstore" 2>&1 >"$tmpdir/mmq-warm.txt")"
if [ "$(cat "$tmpdir/mmq-warm.txt")" != "$mmq_q" ] || ! printf '%s' "$warm_err" | grep -q "query-cache hit"; then
    echo "verify.sh: FAIL — warm mmq rerun is not a byte-identical query-cache replay" >&2
    exit 1
fi
echo "verify.sh: warm mmq rerun replays the query cache byte-identically (no blocks opened)"

# Append-only rounds: the prior round's file stays byte-identical, the
# union covers more samples, and a --rounds 0 ceiling reproduces the
# pre-append answer exactly.
base_f12="$(./target/release/mmq f12 --quick --store "$qstore" 2>/dev/null)"
round0="$(ls "$qstore"/d2-*.mmst | grep -v 'd2-round' | head -n1)"
round0_sum="$(cksum "$round0")"
./target/release/mmx --append --quick --store "$qstore" >/dev/null 2>&1
if [ "$(cksum "$round0")" != "$round0_sum" ]; then
    echo "verify.sh: FAIL — mmx --append rewrote the round-0 entry" >&2
    exit 1
fi
union_f12="$(./target/release/mmq f12 --quick --store "$qstore" 2>/dev/null)"
ceil_f12="$(./target/release/mmq f12 --rounds 0 --quick --store "$qstore" 2>/dev/null)"
if [ "$union_f12" = "$base_f12" ] || [ "$ceil_f12" != "$base_f12" ]; then
    echo "verify.sh: FAIL — appended round does not union (or --rounds 0 is not the round-0 answer)" >&2
    exit 1
fi
echo "verify.sh: mmx --append left round 0 untouched; mmq unions it and --rounds 0 replays the old answer"

# Schema fail-fast: a campaign entry of the wrong kind must be a typed
# runtime error (exit 3) before any row decode is attempted.
cp "$qstore"/manifest-*.mmst "$round0"
set +e
q_err="$(./target/release/mmq f13 --quick --store "$qstore" 2>&1 >/dev/null)"
q_code=$?
set -e
if [ "$q_code" -ne 3 ] || ! printf '%s' "$q_err" | grep -q "store error"; then
    echo "verify.sh: FAIL — wrong-kind campaign entry exited $q_code (want 3): $q_err" >&2
    exit 1
fi
echo "verify.sh: wrong-kind campaign entry fails typed (exit 3) under mmq"

# Paper scale: the full crawl must reach the published dataset volume
# (>= 8M samples, paper: 7,996,149), and every D2 figure must render off
# the on-disk store inside a fixed memory ceiling — materializing the
# ~8M-sample dataset (~650 MB resident) is impossible under it, so staying
# below proves the block-streamed path (DESIGN.md §10).
paper_store="$tmpdir/paper-store"
crawl_line="$(./target/release/mmx crawl --scale paper --store "$paper_store" 2>&1 | grep 'mmx crawl:')"
echo "verify.sh: $crawl_line"
n_samples="$(printf '%s' "$crawl_line" | sed -n 's/.*crawl: \([0-9]*\) samples.*/\1/p')"
if [ -z "$n_samples" ] || [ "$n_samples" -lt 8000000 ]; then
    echo "verify.sh: FAIL — paper-scale crawl yielded ${n_samples:-0} samples (want >= 8,000,000)" >&2
    exit 1
fi
rss_ceiling_kb=409600   # 400 MB; the streamed render measures ~165 MB
./target/release/mmx f11 f12 f13 f14 f15 f16 f17 f18 f19 f20 f21 f22 \
    --scale paper --store "$paper_store" --load > "$tmpdir/paper-figs.txt" 2>/dev/null &
mmx_pid=$!
peak_kb=0
while kill -0 "$mmx_pid" 2>/dev/null; do
    rss="$(awk '/VmRSS/{print $2}' "/proc/$mmx_pid/status" 2>/dev/null || echo 0)"
    [ "${rss:-0}" -gt "$peak_kb" ] && peak_kb=$rss
    sleep 0.05
done
if ! wait "$mmx_pid"; then
    echo "verify.sh: FAIL — paper-scale streamed figure render exited nonzero" >&2
    exit 1
fi
if [ "$peak_kb" -gt "$rss_ceiling_kb" ]; then
    echo "verify.sh: FAIL — paper-scale render peaked at ${peak_kb} kB RSS (ceiling ${rss_ceiling_kb} kB)" >&2
    exit 1
fi
if [ "$(wc -l < "$tmpdir/paper-figs.txt")" -lt 100 ]; then
    echo "verify.sh: FAIL — paper-scale figure output is implausibly short" >&2
    exit 1
fi
echo "verify.sh: paper-scale D2 (${n_samples} samples) rendered off-store at ${peak_kb} kB peak RSS (ceiling ${rss_ceiling_kb} kB)"

# Predicate pushdown at paper scale: a single-carrier query must skip at
# least half of the row groups — the crawl clusters carriers, so the
# per-group vocabulary stats rule most blocks out before any column (or
# checksum) is touched.
scan_line="$(./target/release/mmq f16 --carrier A --rat lte --scale paper --store "$paper_store" 2>&1 >/dev/null | grep 'mmq scan:')"
echo "verify.sh: $scan_line"
decoded="$(printf '%s' "$scan_line" | sed -n 's/.*: \([0-9]*\) of [0-9]* group(s).*/\1/p')"
total="$(printf '%s' "$scan_line" | sed -n 's/.* of \([0-9]*\) group(s).*/\1/p')"
if [ -z "$decoded" ] || [ -z "$total" ] || [ $((decoded * 2)) -gt "$total" ]; then
    echo "verify.sh: FAIL — carrier query decoded ${decoded:-?} of ${total:-?} groups (want <= half)" >&2
    exit 1
fi
echo "verify.sh: paper-scale carrier query decoded ${decoded}/${total} row groups (pushdown skipped >= 50%)"

# The aggregation bench must publish its samples/sec section in the JSON
# report — the number the performance claims in README.md cite.
cargo bench -p mm-bench --bench aggregate -- --smoke
agg_report="${MM_BENCH_DIR:-target/mm-bench}/aggregate.json"
for key in aggregate_rate crawl_samples_per_s agg_from_store_samples_per_s; do
    if ! grep -q "$key" "$agg_report"; then
        echo "verify.sh: FAIL — $agg_report lacks the $key section" >&2
        exit 1
    fi
done
echo "verify.sh: aggregate bench JSON carries the aggregate_rate samples/sec section"

# The query bench must publish both mmq sections, and pushdown must beat
# the full scan by at least 2x on the same carrier slice.
cargo bench -p mm-bench --bench query -- --smoke
q_report="${MM_BENCH_DIR:-target/mm-bench}/query.json"
for key in query_pushdown full_scan_rows_per_s pushdown_rows_per_s speedup_x query_latency warm_speedup_x; do
    if ! grep -q "$key" "$q_report"; then
        echo "verify.sh: FAIL — $q_report lacks the $key section" >&2
        exit 1
    fi
done
speedup="$(sed -n 's/.*"speedup_x":\([0-9.]*\).*/\1/p' "$q_report")"
if ! awk -v s="${speedup:-0}" 'BEGIN { exit !(s >= 2.0) }'; then
    echo "verify.sh: FAIL — pushdown speedup ${speedup:-?}x is below the 2x gate" >&2
    exit 1
fi
echo "verify.sh: query bench pushdown speedup ${speedup}x (gate: >= 2x) with both JSON sections"

# Fleet scale (DESIGN.md §12): the event-driven runtime must carry 100k
# concurrent UEs in one process inside a fixed memory ceiling — integer
# tallies are O(1) per UE, so staying below proves nothing per-UE is
# materialized — and the report plus retained telemetry must be
# byte-identical for any MM_THREADS and any shard count.
fleet_rss_ceiling_kb=131072   # 128 MB; the 100k-UE tally run measures ~60 MB
MM_THREADS=8 ./target/release/mmx fleet --ues 100000 --shards 64 --duration-s 2 \
    --metrics="$tmpdir/fleet-a.json" > "$tmpdir/fleet-a.txt" 2>/dev/null &
fleet_pid=$!
fleet_peak_kb=0
while kill -0 "$fleet_pid" 2>/dev/null; do
    rss="$(awk '/VmRSS/{print $2}' "/proc/$fleet_pid/status" 2>/dev/null || echo 0)"
    [ "${rss:-0}" -gt "$fleet_peak_kb" ] && fleet_peak_kb=$rss
    sleep 0.05
done
if ! wait "$fleet_pid"; then
    echo "verify.sh: FAIL — 100k-UE fleet run exited nonzero" >&2
    exit 1
fi
if [ "$fleet_peak_kb" -gt "$fleet_rss_ceiling_kb" ]; then
    echo "verify.sh: FAIL — 100k-UE fleet peaked at ${fleet_peak_kb} kB RSS (ceiling ${fleet_rss_ceiling_kb} kB)" >&2
    exit 1
fi
if ! grep -q "fleet: ues 100000 attached 100000" "$tmpdir/fleet-a.txt"; then
    echo "verify.sh: FAIL — fleet report did not attach all 100,000 UEs" >&2
    cat "$tmpdir/fleet-a.txt" >&2
    exit 1
fi
MM_THREADS=1 ./target/release/mmx fleet --ues 100000 --shards 16 --duration-s 2 \
    --metrics="$tmpdir/fleet-b.json" > "$tmpdir/fleet-b.txt" 2>/dev/null
if ! cmp -s "$tmpdir/fleet-a.txt" "$tmpdir/fleet-b.txt"; then
    echo "verify.sh: FAIL — fleet report differs between MM_THREADS=8/64 shards and MM_THREADS=1/16 shards" >&2
    diff "$tmpdir/fleet-a.txt" "$tmpdir/fleet-b.txt" >&2 || true
    exit 1
fi
if ! cmp -s "$tmpdir/fleet-a.json" "$tmpdir/fleet-b.json"; then
    echo "verify.sh: FAIL — fleet --metrics differ between MM_THREADS=8/64 shards and MM_THREADS=1/16 shards" >&2
    exit 1
fi
echo "verify.sh: 100k-UE fleet at ${fleet_peak_kb} kB peak RSS (ceiling ${fleet_rss_ceiling_kb} kB), thread/shard-invariant report + metrics"

# The fleet bench must publish its UE-events/sec section in the JSON
# report — the throughput number README.md cites for the runtime.
cargo bench -p mm-bench --bench fleet -- --smoke
fleet_report="${MM_BENCH_DIR:-target/mm-bench}/fleet.json"
for key in fleet_rate ue_events_per_sec; do
    if ! grep -q "$key" "$fleet_report"; then
        echo "verify.sh: FAIL — $fleet_report lacks the $key section" >&2
        exit 1
    fi
done
echo "verify.sh: fleet bench JSON carries the fleet_rate ue_events_per_sec section"

# The lint bench must publish cold-vs-warm files/sec, and the warm
# (cache-served) run must be at least 3x faster than the cold run — the
# number that makes incremental `mmlint` worth its cache. Full sampling
# (not --smoke): the gate reads a median, not a single timing.
cargo bench -p mm-bench --bench lint
lint_report="${MM_BENCH_DIR:-target/mm-bench}/lint.json"
for key in lint_cache cold_files_per_s warm_files_per_s warm_speedup_x; do
    if ! grep -q "$key" "$lint_report"; then
        echo "verify.sh: FAIL — $lint_report lacks the $key section" >&2
        exit 1
    fi
done
lint_speedup="$(sed -n 's/.*"warm_speedup_x":\([0-9.]*\).*/\1/p' "$lint_report")"
if ! awk -v s="${lint_speedup:-0}" 'BEGIN { exit !(s >= 3.0) }'; then
    echo "verify.sh: FAIL — warm mmlint speedup ${lint_speedup:-?}x is below the 3x gate" >&2
    exit 1
fi
echo "verify.sh: lint bench warm-cache speedup ${lint_speedup}x (gate: >= 3x) with cold/warm files/sec sections"

# Query serving (DESIGN.md §14): a resident mmqd must answer concurrent
# `mmq --connect` clients byte-identically to local `mmq` over the same
# store, share its warm query cache across connections, expose a
# well-formed Serve telemetry snapshot through the stats control request,
# and drain to exit 0 on the shutdown control frame — at MM_THREADS=1
# (one worker serializing every client) and MM_THREADS=8 alike.
sstore="$tmpdir/sstore"
./target/release/mmx f5 --quick --store "$sstore" --save >/dev/null 2>&1
./target/release/mmq $served --quick --store "$sstore" > "$tmpdir/ref-corpus.txt" 2>/dev/null
./target/release/mmq div --carrier A --quick --store "$sstore" > "$tmpdir/ref-div.txt" 2>/dev/null
./target/release/mmq ho-active --quick --store "$sstore" > "$tmpdir/ref-ho-active.txt" 2>/dev/null
./target/release/mmq ho-idle --quick --store "$sstore" > "$tmpdir/ref-ho-idle.txt" 2>/dev/null
./target/release/mmq f16 --group-by carrier --quick --store "$sstore" > "$tmpdir/ref-group.txt" 2>/dev/null
for threads in 1 8; do
    MM_THREADS=$threads ./target/release/mmqd --store "$sstore" --quick \
        > "$tmpdir/mmqd-$threads.out" 2>/dev/null &
    mmqd_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^mmqd: listening on //p' "$tmpdir/mmqd-$threads.out")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "verify.sh: FAIL — mmqd (MM_THREADS=$threads) never reported its address" >&2
        exit 1
    fi
    # Eight concurrent clients: three full corpora, two diversity slices,
    # both handoff summaries, one carrier-grouped figure.
    declare -A want=(
        [c1]="ref-corpus" [c2]="ref-corpus" [c3]="ref-corpus"
        [d1]="ref-div" [d2]="ref-div"
        [ha]="ref-ho-active" [hi]="ref-ho-idle"
        [g1]="ref-group"
    )
    pids=""
    for tag in c1 c2 c3 d1 d2 ha hi g1; do
        case "$tag" in
            c*) args="$served" ;;
            d*) args="div --carrier A" ;;
            ha) args="ho-active" ;;
            hi) args="ho-idle" ;;
            g1) args="f16 --group-by carrier" ;;
        esac
        ./target/release/mmq $args --connect "$addr" \
            > "$tmpdir/client-$tag.txt" 2>/dev/null &
        pids="$pids $!"
    done
    for pid in $pids; do
        if ! wait "$pid"; then
            echo "verify.sh: FAIL — a concurrent mmq --connect client exited nonzero (MM_THREADS=$threads)" >&2
            exit 1
        fi
    done
    for tag in c1 c2 c3 d1 d2 ha hi g1; do
        if ! cmp -s "$tmpdir/client-$tag.txt" "$tmpdir/${want[$tag]}.txt"; then
            echo "verify.sh: FAIL — served output $tag diverges from local mmq (MM_THREADS=$threads)" >&2
            diff "$tmpdir/client-$tag.txt" "$tmpdir/${want[$tag]}.txt" >&2 || true
            exit 1
        fi
    done
    # Warm service: a repeat query must be a cache hit that opened no
    # data blocks — the shared-engine claim, observable client-side.
    warm_serve_err="$(./target/release/mmq f16 --connect "$addr" 2>&1 >/dev/null)"
    if ! printf '%s' "$warm_serve_err" | grep -q "query-cache hit"; then
        echo "verify.sh: FAIL — repeat served query was not a warm cache hit: $warm_serve_err" >&2
        exit 1
    fi
    # The Serve snapshot is well-formed JSON with the serving counters.
    stats_out="$(./target/release/mmq stats --connect "$addr" 2>/dev/null)"
    for key in '"name":"serve"' cache_hits connections requests_served service_ms queue_depth; do
        if ! printf '%s' "$stats_out" | grep -q "$key"; then
            echo "verify.sh: FAIL — serve stats snapshot lacks $key: $stats_out" >&2
            exit 1
        fi
    done
    # Clean drain: the control frame is acknowledged and mmqd exits 0.
    ./target/release/mmq shutdown --connect "$addr" >/dev/null 2>&1
    if ! wait "$mmqd_pid"; then
        echo "verify.sh: FAIL — mmqd exited nonzero after shutdown (MM_THREADS=$threads)" >&2
        exit 1
    fi
    if ! grep -q "mmqd: drained, exiting" "$tmpdir/mmqd-$threads.out"; then
        echo "verify.sh: FAIL — mmqd did not report a clean drain (MM_THREADS=$threads)" >&2
        exit 1
    fi
    echo "verify.sh: mmqd served 8 concurrent clients byte-identically, warm-cached, and drained clean (MM_THREADS=$threads)"
done

# The serve bench must publish warm-vs-cold-process qps, and the resident
# warm path must beat spawning a fresh mmq per query by at least 100x.
cargo bench -p mm-bench --bench serve -- --smoke
serve_report="${MM_BENCH_DIR:-target/mm-bench}/serve.json"
for key in serve_rate warm_qps cold_process_qps speedup_x; do
    if ! grep -q "$key" "$serve_report"; then
        echo "verify.sh: FAIL — $serve_report lacks the $key section" >&2
        exit 1
    fi
done
serve_speedup="$(sed -n 's/.*"speedup_x":\([0-9.]*\).*/\1/p' "$serve_report")"
if ! awk -v s="${serve_speedup:-0}" 'BEGIN { exit !(s >= 100.0) }'; then
    echo "verify.sh: FAIL — warm served qps is ${serve_speedup:-?}x the cold-process path (gate: >= 100x)" >&2
    exit 1
fi
echo "verify.sh: serve bench warm qps ${serve_speedup}x the cold-process path (gate: >= 100x)"

echo "verify.sh: build + fmt + clippy + mmlint strict + tests + determinism + bench smoke + store + streaming + paper-scale + query + fleet + lint-cache + serving gates all green (offline)"
