#!/usr/bin/env bash
# Offline verification gate: the whole workspace must build, lint, test and
# smoke-bench with no network and no registry crates, and the mm-exec
# parallel scheduler must be byte-identical to the sequential path.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --workspace --release
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
# Domain lints (determinism scopes, hermetic manifests, panic-free
# libraries — DESIGN.md §8): zero unsuppressed diagnostics allowed.
./target/release/mmlint --root .
cargo test -q --workspace
# The scheduler determinism contract, explicitly (also part of the suite
# above; kept separate so a violation is unmistakable in CI logs).
cargo test -q --release --test determinism
cargo bench -p mm-bench -- --smoke
cargo bench -p mm-bench --bench exec -- --smoke

# End-to-end: `mmx all ablations` stdout must not depend on the thread
# count, and neither may the deterministic telemetry snapshot emitted by
# --metrics. Any divergence here is a scheduler-determinism bug.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
seq_out="$(MM_THREADS=1 ./target/release/mmx all ablations --quick --metrics="$tmpdir/m1.json" 2>/dev/null)"
par_out="$(MM_THREADS=8 ./target/release/mmx all ablations --quick --metrics="$tmpdir/m8.json" 2>/dev/null)"
if [ "$seq_out" != "$par_out" ]; then
    echo "verify.sh: FAIL — mmx output diverges between MM_THREADS=1 and 8" >&2
    exit 1
fi
echo "verify.sh: mmx parallel output identical to sequential (MM_THREADS=1 vs 8)"
if ! cmp -s "$tmpdir/m1.json" "$tmpdir/m8.json"; then
    echo "verify.sh: FAIL — mmx --metrics snapshot diverges between MM_THREADS=1 and 8" >&2
    diff "$tmpdir/m1.json" "$tmpdir/m8.json" >&2 || true
    exit 1
fi
echo "verify.sh: mmx --metrics telemetry snapshot identical (MM_THREADS=1 vs 8)"

# Storage layer (DESIGN.md §9): a warm `--load` rerun must byte-identically
# replay the cold run's stdout and --metrics snapshot, at any thread count.
store="$tmpdir/store"
cold_out="$(MM_THREADS=1 ./target/release/mmx all --quick --store "$store" --save --metrics="$tmpdir/cold.json" 2>/dev/null)"
warm_out="$(MM_THREADS=8 ./target/release/mmx all --quick --store "$store" --load --metrics="$tmpdir/warm.json" 2>/dev/null)"
if [ "$cold_out" != "$warm_out" ]; then
    echo "verify.sh: FAIL — warm mmx --load stdout diverges from the cold run" >&2
    exit 1
fi
if ! cmp -s "$tmpdir/cold.json" "$tmpdir/warm.json"; then
    echo "verify.sh: FAIL — warm mmx --load metrics diverge from the cold run" >&2
    diff "$tmpdir/cold.json" "$tmpdir/warm.json" >&2 || true
    exit 1
fi
echo "verify.sh: mmx cold-vs-warm store replay byte-identical (stdout + metrics)"

# Corruption injection: a damaged store entry must fail with the typed
# runtime exit code (3), never panic and never silently fall back.
bundle="$(ls "$store"/run-*.mmst)"
corrupt_check() {
    local label="$1"
    set +e
    err="$(MM_THREADS=2 ./target/release/mmx all --quick --store "$store" --load 2>&1 >/dev/null)"
    code=$?
    set -e
    if [ "$code" -ne 3 ]; then
        echo "verify.sh: FAIL — $label store entry exited $code (want 3): $err" >&2
        exit 1
    fi
    if ! printf '%s' "$err" | grep -q "store error"; then
        echo "verify.sh: FAIL — $label store entry lacks typed diagnosis: $err" >&2
        exit 1
    fi
}
cp "$bundle" "$tmpdir/bundle.bak"
printf '\xff' | dd of="$bundle" bs=1 seek=200 conv=notrunc 2>/dev/null   # bit flip
corrupt_check "bit-flipped"
head -c 64 "$tmpdir/bundle.bak" > "$bundle"                              # truncation
corrupt_check "truncated"
printf 'XXXX' | dd of="$bundle" bs=1 conv=notrunc 2>/dev/null            # wrong magic
corrupt_check "wrong-magic"
cp "$tmpdir/bundle.bak" "$bundle"
printf '\x63' | dd of="$bundle" bs=1 seek=4 conv=notrunc 2>/dev/null     # future version
corrupt_check "future-version"
echo "verify.sh: corrupted store entries fail typed (exit 3) for all four damage classes"

echo "verify.sh: build + fmt + clippy + mmlint + tests + determinism + bench smoke + store gates all green (offline)"
