#!/usr/bin/env bash
# Offline verification gate: the whole workspace must build, test and
# smoke-bench with no network and no registry crates.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --workspace --release
cargo test -q --workspace
cargo bench -p mm-bench -- --smoke

echo "verify.sh: build + tests + bench smoke all green (offline)"
