//! Troubleshooting misconfigurations — the paper's §5.4.1 case studies:
//!
//! 1. **The band-30 outage**: AT&T gave its newly acquired band 30 the
//!    highest reselection priority; phones that do not support band 30
//!    keep being steered at a cell they cannot use and lose 4G service.
//! 2. **Priority loops**: multi-valued priorities on the same channel make
//!    two cells each believe the other is higher-priority — a reselection
//!    ping-pong ([22]'s instability).
//!
//! ```text
//! cargo run --release --example troubleshoot
//! ```

use mmcore::reselect::Candidate;
use mobility_mm::prelude::*;

/// Case 1: the band-30 complaint. A UE without band-30 support camps near
/// a band-17 cell whose configuration prefers the band-30 layer.
fn band30_outage() {
    println!("=== case 1: the band-30 (EARFCN 9820) outage ===");
    let b17 = ChannelNumber::earfcn(5780);
    let b30 = ChannelNumber::earfcn(9820);

    let mut cfg = CellConfig::minimal(CellId(1), b17);
    cfg.serving.priority = 2;
    let mut layer = NeighborFreqConfig::lte(9820, 5); // highest priority
    layer.thresh_x_high_db = 12.0;
    cfg.neighbor_freqs.push(layer);

    // A band-30 candidate is audible at a decent level.
    let candidate = Candidate {
        cell: CellId(9),
        channel: b30,
        rsrp_dbm: -100.0,
    };
    let serving_rsrp = -95.0;

    let wants_band30 = Reselector::criterion_met(&cfg, serving_rsrp, &candidate);
    println!("  configuration steers the UE at band 30: {wants_band30}");

    // A phone without band 30 cannot act on that steering — and because the
    // higher-priority rule ignores the serving cell's quality, the steering
    // never stops. Detection: a configured layer the device cannot measure.
    let supported = [b17];
    let unusable: Vec<_> = cfg
        .neighbor_freqs
        .iter()
        .filter(|f| !supported.contains(&f.channel))
        .collect();
    for f in &unusable {
        println!(
            "  ! layer EARFCN {} (priority {}) is not supported by this device \
             -> persistent steering at an unusable cell (the AT&T complaint)",
            f.channel, f.priority
        );
    }
    assert!(wants_band30 && !unusable.is_empty());
}

/// Case 2: inconsistent multi-valued priorities → a reselection loop.
fn priority_loop() {
    println!("\n=== case 2: priority loop from multi-valued channel priorities ===");
    let chan_a = ChannelNumber::earfcn(1975);
    let chan_b = ChannelNumber::earfcn(2000);

    // Cell A (on 1975) believes 2000 is higher-priority; cell B (on 2000)
    // believes 1975 is higher-priority — both drawn from the same carrier's
    // multi-valued priority map (§5.4.1: 6.3% of AT&T cells).
    let mut cfg_a = CellConfig::minimal(CellId(1), chan_a);
    cfg_a.serving.priority = 3;
    cfg_a.neighbor_freqs.push(NeighborFreqConfig::lte(2000, 4));

    let mut cfg_b = CellConfig::minimal(CellId(2), chan_b);
    cfg_b.serving.priority = 3;
    cfg_b.neighbor_freqs.push(NeighborFreqConfig::lte(1975, 4));

    // Both cells audible at healthy levels everywhere on the street.
    let a_to_b = Reselector::criterion_met(
        &cfg_a,
        -90.0,
        &Candidate {
            cell: CellId(2),
            channel: chan_b,
            rsrp_dbm: -95.0,
        },
    );
    let b_to_a = Reselector::criterion_met(
        &cfg_b,
        -95.0,
        &Candidate {
            cell: CellId(1),
            channel: chan_a,
            rsrp_dbm: -90.0,
        },
    );
    println!("  A ranks B above itself: {a_to_b}");
    println!("  B ranks A above itself: {b_to_a}");
    if a_to_b && b_to_a {
        println!(
            "  ! loop detected: the UE oscillates A->B->A->..., burning battery \
             (the instability of [22])"
        );
    }
    assert!(a_to_b && b_to_a, "the loop must manifest");

    // Automated verification (the paper's §6 suggestion): check pairwise
    // consistency of the priority graph.
    let inconsistent = cfg_a.priority_of(chan_b) > Some(cfg_a.serving.priority)
        && cfg_b.priority_of(chan_a) > Some(cfg_b.serving.priority);
    println!("  automated pairwise priority check flags the loop: {inconsistent}");
    assert!(inconsistent);
}

/// Case 3: wasted measurements (§4.2) — flag cells whose measurement
/// thresholds are far above any decision threshold.
fn wasted_measurements() {
    println!("\n=== case 3: premature measurements ===");
    let world = World::generate(2018, 0.02);
    let mut flagged = 0;
    let mut total = 0;
    for cell in world.cells() {
        let Some(cfg) = world.observed_config(cell, 0) else {
            continue;
        };
        total += 1;
        let eff = mmcore::measurement::measurement_efficiency(&cfg.serving);
        if eff.intra_decision_gap_db > 30.0 {
            flagged += 1;
        }
    }
    println!(
        "  {flagged}/{total} LTE cells measure intra-frequency neighbours more than \
         30 dB before any handoff could trigger (paper: >30 dB in ~95% of cells)"
    );
}

fn main() {
    band30_outage();
    priority_loop();
    wasted_measurements();
}
