//! Quickstart: build a two-cell network, drive between the cells, and watch
//! the full policy-based handoff procedure — configuration broadcast,
//! A3 measurement report, network decision, execution.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mobility_mm::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // 1. Physical layer: two LTE cells 2.5 km apart on EARFCN 850 (band 2).
    let chan = ChannelNumber::earfcn(850);
    let model = PropagationModel::new(Environment::Urban, 42);
    let deployment = Deployment::new(
        vec![
            cell(1, 0.0, 0.0, chan, 46.0),
            cell(2, 2500.0, 0.0, chan, 46.0),
        ],
        model,
    );

    // 2. Policy layer: each cell broadcasts an A3(3 dB) handoff policy —
    //    the most popular configuration in both AT&T and T-Mobile (Fig 5).
    let mut configs = BTreeMap::new();
    for id in [1u32, 2] {
        let mut cfg = CellConfig::minimal(CellId(id), chan);
        cfg.report_configs.push(ReportConfig::a3(3.0));
        configs.insert(CellId(id), cfg);
    }
    let network = Network::new(deployment, configs);

    // 3. Drive from under cell 1 to under cell 2 at ~40 km/h running a
    //    continuous speedtest.
    let drive_cfg =
        DriveConfig::active_speedtest(Mobility::straight_line(60.0, 2500.0, 11.0), 300_000, 7);
    let result = drive(&network, &drive_cfg).expect("UE attaches to cell 1");

    println!("=== handoffs ===");
    for h in &result.handoffs {
        println!(
            "t={:>6.1}s  {} -> {}  via {}  dRSRP = {:+.1} dB  min thpt before = {}",
            h.t_ms as f64 / 1000.0,
            h.from,
            h.to,
            h.event_label(),
            h.delta_rsrp_db(),
            h.min_thpt_before_bps
                .map_or("n/a".to_string(), |b| format!("{:.2} Mbps", b / 1e6)),
        );
    }

    println!(
        "\n=== mean throughput: {:.2} Mbps ===",
        result.mean_throughput_bps() / 1e6
    );

    println!("\n=== device-side signaling capture (first 12 messages) ===");
    let digest = result.log.digest();
    for line in digest.lines().take(12) {
        println!("{line}");
    }

    // 4. The device-centric boundary: everything above is reconstructible
    //    from the broadcast bytes alone.
    let cfg = network.config(result.final_serving);
    let rebuilt = assemble(
        &broadcast(cfg)
            .iter()
            .map(|m| RrcMessage::decode(&m.encode()).expect("self-produced SIBs decode"))
            .collect::<Vec<_>>(),
    )
    .expect("complete SIB set");
    assert_eq!(&rebuilt, cfg);
    println!("\nSIB round trip OK: the crawler sees exactly what the cell configured.");
}
