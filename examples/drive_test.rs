//! A Type-II measurement campaign: drive-test fleets for AT&T and T-Mobile
//! across the paper's three drive cities, producing a D1-style dataset of
//! handoff instances with radio and throughput context.
//!
//! ```text
//! cargo run --release --example drive_test [-- <scale> <runs>]
//! ```

use mmlab::stats::{mean, pct_above};
use mmnetsim::run::HandoffKind;
use mobility_mm::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.08);
    let runs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    println!("generating world (scale {scale}) ...");
    let world = World::generate(2018, scale);

    let cfg = CampaignConfig::active(11)
        .runs(runs)
        .duration_ms(480_000)
        .cities(&[City::C1, City::C3, City::C5]);
    let mut d1 = D1::default();
    for carrier in ["A", "T"] {
        println!("running {runs} drives x 3 cities for {carrier} ...");
        d1.extend(run_campaign(&world, carrier, &cfg));
    }
    println!("collected {} active-state handoff instances\n", d1.len());

    for carrier in ["A", "T"] {
        let mut by_event: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        let mut delays = Vec::new();
        for i in d1.filter(&Predicate::any().carrier(carrier)) {
            by_event
                .entry(i.record.event_label())
                .or_default()
                .push(i.record.delta_rsrp_db());
            if let HandoffKind::Active {
                command_delay_ms, ..
            } = i.record.kind
            {
                delays.push(command_delay_ms as f64);
            }
        }
        println!("=== {carrier} ===");
        let total: usize = by_event.values().map(Vec::len).sum();
        for (event, deltas) in &by_event {
            println!(
                "  {event:<3} {:>5.1}%  dRSRP>0: {:>3.0}%  mean dRSRP {:+.1} dB",
                100.0 * deltas.len() as f64 / total as f64,
                pct_above(deltas, 0.0),
                mean(deltas),
            );
        }
        println!(
            "  report->command delay: mean {:.0} ms (paper: 80-230 ms)\n",
            mean(&delays)
        );
    }

    // Export the dataset as JSON lines, like the paper's released data.
    let out = std::env::temp_dir().join("mobility_mm_d1.jsonl");
    let mut body = String::new();
    for i in d1.iter_handoffs() {
        use mm_json::ToJson;
        body.push_str(&i.to_json_string());
        body.push('\n');
    }
    std::fs::write(&out, body).expect("write dataset");
    println!("D1 exported to {}", out.display());
}
