//! A Type-I measurement: crawl the handoff configurations of all 30
//! carriers through the signaling round trip (dataset D2), then
//! characterize the diversity of the configuration space — the paper's Q1.
//!
//! ```text
//! cargo run --release --example config_crawl [-- <scale>]
//! ```

use mmlab::diversity::diversity;
use mmradio::band::Rat;
use mobility_mm::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.1);

    println!("generating world (scale {scale}) and crawling ...");
    let world = World::generate(2018, scale);
    let d2 = crawl(&world, 99);
    println!(
        "crawled {} samples from {} unique cells across {} carriers\n",
        d2.len(),
        d2.unique_cells(),
        d2.carriers().len()
    );

    println!("=== parameter diversity, AT&T LTE (paper Fig 16) ===");
    println!(
        "{:<36} {:>8} {:>8} {:>9}",
        "parameter", "D", "Cv", "richness"
    );
    let mut rows: Vec<(&str, mmlab::Diversity)> = d2
        .param_names("A", Rat::Lte)
        .into_iter()
        .map(|p| (p, diversity(&d2.unique_values("A", Rat::Lte, p))))
        .collect();
    rows.sort_by(|a, b| a.1.simpson.partial_cmp(&b.1.simpson).expect("no NaN"));
    for (param, d) in rows {
        println!(
            "{param:<36} {:>8.3} {:>8.3} {:>9}",
            d.simpson, d.cv, d.richness
        );
    }

    println!("\n=== the same parameter across carriers (paper Fig 17) ===");
    for carrier in ["A", "T", "V", "S", "CM", "SK", "MO"] {
        let values = d2.unique_values(carrier, Rat::Lte, "threshServingLowP");
        if values.is_empty() {
            continue;
        }
        let d = diversity(&values);
        println!(
            "threshServingLowP @ {carrier:<3}  D={:.3}  Cv={:.3}  richness={}",
            d.simpson, d.cv, d.richness
        );
    }

    println!("\n=== RAT evolution (paper Fig 22) ===");
    for (label, carrier, rat) in [
        ("LTE    @ AT&T", "A", Rat::Lte),
        ("WCDMA  @ AT&T", "A", Rat::Umts),
        ("EVDO   @ Sprint", "S", Rat::Evdo),
        ("GSM    @ AT&T", "A", Rat::Gsm),
    ] {
        let ds: Vec<f64> = d2
            .param_names(carrier, rat)
            .into_iter()
            .map(|p| mmlab::simpson_index(&d2.unique_values(carrier, rat, p)))
            .collect();
        let mean = ds.iter().sum::<f64>() / ds.len().max(1) as f64;
        println!(
            "{label:<16} mean Simpson D over {} params: {mean:.3}",
            ds.len()
        );
    }
}
