//! Device-side handoff prediction — the application the paper's §6 proposes:
//! *"given the observable configurations, it is feasible to predict handoffs
//! at runtime at the mobile device"*.
//!
//! The predictor crawls the serving cell's broadcast configuration (as a
//! phone can), learns which of its own measurement reports can be decisive
//! under that policy, and flags an imminent handoff when one is sent. We
//! score predictions (recall and precision) against the handoffs the
//! network actually commanded.
//!
//! ```text
//! cargo run --release --example handoff_predictor
//! ```

use mobility_mm::prelude::*;
use std::collections::BTreeMap;

/// A prediction: "a handoff is imminent" raised at `t_ms`.
struct Prediction {
    t_ms: u64,
}

fn main() {
    // The same controlled corridor as the paper's Type-II runs.
    let chan = ChannelNumber::earfcn(1975);
    let model = PropagationModel::new(Environment::Urban, 17);
    let mut cells = Vec::new();
    let mut configs = BTreeMap::new();
    for i in 0..5u32 {
        cells.push(cell(i + 1, f64::from(i) * 2_200.0, 0.0, chan, 46.0));
        let mut cfg = CellConfig::minimal(CellId(i + 1), chan);
        cfg.report_configs.push(ReportConfig::a3(3.0));
        configs.insert(CellId(i + 1), cfg);
    }
    let network = Network::new(Deployment::new(cells, model), configs);

    let drive_cfg =
        DriveConfig::active_speedtest(Mobility::straight_line(60.0, 9_000.0, 11.0), 700_000, 23);
    let result = drive(&network, &drive_cfg).expect("UE attaches");
    println!("ground truth: {} handoffs\n", result.handoffs.len());

    // ---- The predictor ------------------------------------------------
    // The device has crawled the serving cell's measConfig off the SIB/RRC
    // broadcast, so it knows *which* of its own measurement reports can be
    // decisive (A3/A4/A5/B1/B2/P nominate candidates; A1/A2 never decide —
    // §4.1). Every time it sends such a report, it predicts "handoff within
    // ~80–230 ms + network think time".
    let mut predictions: Vec<Prediction> = Vec::new();
    for entry in result.log.entries() {
        if let RrcMessage::MeasurementReport { content } = &entry.message {
            if content.event.nominates_candidates() && !content.cells.is_empty() {
                predictions.push(Prediction { t_ms: entry.t_ms });
            }
        }
    }

    // ---- Scoring -------------------------------------------------------
    let window_ms = 2_000;
    let mut hits = 0;
    for h in &result.handoffs {
        let predicted = predictions
            .iter()
            .any(|p| p.t_ms <= h.t_ms && h.t_ms - p.t_ms <= window_ms);
        let lead = predictions
            .iter()
            .filter(|p| p.t_ms <= h.t_ms)
            .map(|p| h.t_ms - p.t_ms)
            .min();
        println!(
            "handoff at t={:>6.1}s: predicted = {predicted}{}",
            h.t_ms as f64 / 1000.0,
            lead.map_or(String::new(), |l| format!(" (lead {l} ms)")),
        );
        if predicted {
            hits += 1;
        }
    }
    let total = result.handoffs.len().max(1);
    println!(
        "\nrecall: {hits}/{total} = {:.0}% of handoffs predicted within {window_ms} ms",
        100.0 * hits as f64 / total as f64
    );
    // Precision: a prediction is good if a handoff followed within the
    // window. Extra reports that the network ignored (its proprietary dwell
    // policy) become false positives — the paper's point that radio
    // criteria are necessary but not sufficient for active-state handoffs.
    let good = predictions
        .iter()
        .filter(|p| {
            result
                .handoffs
                .iter()
                .any(|h| p.t_ms <= h.t_ms && h.t_ms - p.t_ms <= window_ms)
        })
        .count();
    println!(
        "precision: {good}/{} = {:.0}% of predictions followed by a handoff",
        predictions.len().max(1),
        100.0 * good as f64 / predictions.len().max(1) as f64
    );
    println!(
        "(the paper: \"such predictions can be highly accurate, given the \
         common handoff policies being used\")"
    );
}
